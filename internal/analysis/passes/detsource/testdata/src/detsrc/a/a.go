// Package a exercises detsource: nondeterministic inputs on a replay path.
package a

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now on a replay path`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since on a replay path`
}

func jitter() int {
	return rand.Intn(10) // want `global rand.Intn on a replay path`
}

// Seeded-generator construction is allowed everywhere.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// Methods on an injected generator are allowed: the seed is the caller's.
func draw(r *rand.Rand) int {
	return r.Intn(10)
}

// A justified waiver is the audit trail that the read never feeds pricing.
func banner() time.Time {
	return time.Now() //lint:detsource startup banner only, never feeds the pipeline
}
