// Package detsource bans nondeterministic inputs — wall-clock reads and the
// global math/rand source — in replay-path packages. Replays are
// bit-reproducible only if every input reaches the pipeline through the
// event stream or an explicitly seeded generator: time.Now on a pricing path
// or an unseeded rand call would make two runs of the same event log
// diverge.
//
// Allowed everywhere: constructing seeded generators (rand.New,
// rand.NewSource, rand.NewPCG, rand.NewChaCha8, rand.NewZipf) and methods on
// a *rand.Rand a caller injected. Allow-listed locations: cmd/* packages
// (operational tooling legitimately reads the clock) and *_test.go files.
// Anything else needs `//lint:detsource <justification>` — the engine's own
// latency metrics carry exactly such waivers, which is the audit trail that
// they never feed pricing, matching, or event order.
package detsource

import (
	"go/ast"
	"go/types"
	"strings"

	"spatialcrowd/internal/analysis"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc: "bans time.Now and global math/rand in replay-path packages " +
		"(cmd/* and _test.go files are allow-listed)",
	Run: run,
}

// replayPackages must be drivable from a recorded event stream with
// bit-identical results.
var replayPackages = []string{
	"spatialcrowd/internal/engine",
	"spatialcrowd/internal/window",
	"spatialcrowd/internal/core",
	"spatialcrowd/internal/market",
	"spatialcrowd/internal/match",
	"spatialcrowd/internal/sim",
	"spatialcrowd/internal/spatial",
	"spatialcrowd/internal/kdtree",
	"spatialcrowd/internal/geo",
	"spatialcrowd/internal/roadnet",
	"spatialcrowd/internal/stats",
	// The write-ahead log sits on the replay path twice over: records are
	// framed during live submission and decoded during recovery, and both
	// must be bit-identical runs of pure code.
	"spatialcrowd/internal/wal",
	// The canonical event codec underpins both the WAL and network ingest:
	// encode/decode must be a pure bit-identical round trip.
	"spatialcrowd/internal/wire",
}

// bannedTime are time-package functions that read the wall clock or
// schedule against it.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// allowedRand are the seeded-generator constructors of math/rand and
// math/rand/v2.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "spatialcrowd/") && path != "spatialcrowd" {
		// Testdata packages: in scope unless they model a cmd/ package.
		return !strings.HasPrefix(path, "cmd/") && !strings.Contains(path, "/cmd/")
	}
	for _, p := range replayPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on an injected *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s on a replay path: wall-clock reads are nondeterministic across runs; carry timestamps in events, or waive with //lint:detsource <why>", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(), "global %s.%s on a replay path: the process-wide source is seeded randomly; inject a seeded *rand.Rand, or waive with //lint:detsource <why>", pkgBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func pkgBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
