package detsource_test

import (
	"testing"

	"spatialcrowd/internal/analysis/analysistest"
	"spatialcrowd/internal/analysis/passes/detsource"
)

func TestDetSource(t *testing.T) {
	analysistest.Run(t, "testdata", detsource.Analyzer,
		"detsrc/a",
		"detsrc/cmd/tool",
	)
}
