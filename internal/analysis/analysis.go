// Package analysis is spatialcrowd's static-analysis framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis built on the
// standard library's go/ast and go/types. The container this repo builds in
// has no module proxy access, so the x/tools module cannot be vendored; the
// subset implemented here (Analyzer, Pass, diagnostics, an analysistest-style
// want-comment runner, a go-list-based package loader, and the `go vet
// -vettool` unit-checker protocol) is exactly what the spatiallint suite
// needs. The API shapes deliberately mirror x/tools so the analyzers could be
// ported to the real framework by changing imports.
//
// The suite's analyzers live under passes/ and enforce the engine's replay
// invariants — see README.md in this directory for the contract, the
// `//lint:` waiver syntax, and how to add an analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools there is no fact or
// result plumbing between analyzers: every spatiallint pass is independent.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in `//lint:<name>`
	// waiver directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `spatiallint -help`.
	Doc string
	// Run executes the analyzer on one package, reporting findings through
	// pass.Report. Returning an error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package being analyzed.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the import path the driver loaded the package under. For
	// analysistest packages this is the testdata-relative path, which is why
	// analyzers scope themselves with In*Scope helpers instead of comparing
	// against Pkg.Path directly.
	PkgPath string
	// TypesInfo records type and object resolution for the package's ASTs.
	TypesInfo *types.Info
	// Report delivers one finding. The driver owns waiver filtering: a
	// reported diagnostic whose source line (or the line above it) carries a
	// justified `//lint:<analyzer>` directive is suppressed.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is stamped by the driver before printing.
	Analyzer string
}
