// Package load turns package patterns into parsed, type-checked packages
// using only the standard library and the go command. It is the spatiallint
// equivalent of golang.org/x/tools/go/packages: `go list -export` compiles
// dependencies into the build cache (working offline) and reports their
// export-data files, and go/importer's gc importer reads those files back,
// so only the packages under analysis are type-checked from source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps` over the patterns in dir and
// returns every reported package.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the patterns relative to dir (a directory inside the module),
// type-checks every matched package from source, and resolves their imports
// through build-cache export data. Dependencies are not returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var out []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := TypeCheck(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// ExportImporter returns a go/types importer that resolves import paths via
// lookup, which maps an import path to an export-data file (as produced by
// the compiler and reported by `go list -export` or a vet.cfg PackageFile
// map).
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.ImporterFrom {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
}

// TypeCheck parses the named files as one package and type-checks them with
// the given importer. Comments are retained for waiver scanning.
func TypeCheck(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", f, err)
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

// Exports lists the named import paths (plus dependencies) and returns
// import path -> export-data file. analysistest uses it to resolve the
// standard-library imports of testdata packages.
func Exports(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
