package analysis

import (
	"bufio"
	"os"
	"regexp"
	"strings"
)

// Waiver directives. A diagnostic is suppressed when the offending source
// line — or the full-line comment immediately above it — carries
//
//	//lint:<analyzer> <justification>
//
// with a non-empty justification. `//lint:ordered <justification>` is the
// conventional spelling for detmaprange (an order-dependence waiver reads
// better at the loop than the analyzer's name). A bare `//lint:<analyzer>`
// with no justification does NOT waive: the whole point of the directive is
// that every escape from an invariant documents why it is safe.

var waiverRe = regexp.MustCompile(`//lint:([a-z]+)\s+(\S.*)$`)

// waiverNames returns the directive names that waive diagnostics from the
// named analyzer.
func waiverNames(analyzer string) []string {
	if analyzer == "detmaprange" {
		return []string{"detmaprange", "ordered"}
	}
	return []string{analyzer}
}

// Waivers scans source files for `//lint:` directives, caching by path.
// The zero value is not usable; call NewWaivers.
type Waivers struct {
	lines map[string][]string
}

// NewWaivers returns an empty waiver cache.
func NewWaivers() *Waivers {
	return &Waivers{lines: make(map[string][]string)}
}

func (w *Waivers) fileLines(path string) []string {
	if ls, ok := w.lines[path]; ok {
		return ls
	}
	var ls []string
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			ls = append(ls, sc.Text())
		}
		f.Close()
	}
	w.lines[path] = ls
	return ls
}

// Waived reports whether a diagnostic from the named analyzer at
// (path, line) is covered by a justified waiver directive. line is 1-based.
func (w *Waivers) Waived(analyzer, path string, line int) bool {
	ls := w.fileLines(path)
	names := waiverNames(analyzer)
	check := func(n int) bool { // n is 1-based
		if n < 1 || n > len(ls) {
			return false
		}
		m := waiverRe.FindStringSubmatch(ls[n-1])
		if m == nil {
			return false
		}
		for _, name := range names {
			if m[1] == name {
				return true
			}
		}
		return false
	}
	if check(line) {
		return true
	}
	// A full-line comment directly above the offending line also waives,
	// so long justifications do not force overlong lines.
	if prev := line - 1; prev >= 1 && prev <= len(ls) {
		if strings.HasPrefix(strings.TrimSpace(ls[prev-1]), "//") {
			return check(prev)
		}
	}
	return false
}
