// Package checker drives a set of analyzers over loaded packages: it runs
// each analyzer, filters findings through `//lint:` waivers, and renders
// the survivors in the conventional file:line:col format. Both the
// cmd/spatiallint standalone mode and its `go vet -vettool` unit mode are
// built on it.
package checker

import (
	"fmt"
	"go/token"
	"io"
	"sort"

	"spatialcrowd/internal/analysis"
	"spatialcrowd/internal/analysis/load"
)

// Finding is one surviving (non-waived) diagnostic with its resolved
// position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in vet's file:line:col format.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run executes every analyzer over every package and returns the surviving
// findings sorted by position. An analyzer returning an error aborts the
// run.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package) ([]Finding, error) {
	waivers := analysis.NewWaivers()
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					d.Analyzer = a.Name
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if waivers.Waived(a.Name, pos.Filename, pos.Line) {
					continue
				}
				out = append(out, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Print writes the findings one per line.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
