// Package analysistest runs one analyzer over testdata packages and checks
// its diagnostics against `// want` expectations, mirroring the x/tools
// package of the same name.
//
// Layout: testdata/src/<importpath>/*.go, one package per directory (the
// import path may contain slashes, so allow-list behavior keyed on package
// paths — cmd/*, internal/engine — can be exercised). Expectations are
// trailing comments:
//
//	for k := range m { // want `nondeterministic map iteration`
//
// Each backquoted or double-quoted string after `want` is a regexp that must
// match exactly one diagnostic reported on that line; diagnostics on lines
// with no matching expectation, and expectations with no matching
// diagnostic, fail the test. Waiver filtering runs exactly as in the real
// driver, so testdata also pins the `//lint:` escape hatch.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"spatialcrowd/internal/analysis"
	"spatialcrowd/internal/analysis/checker"
	"spatialcrowd/internal/analysis/load"
)

var wantRe = regexp.MustCompile("(?://|/\\*)\\s*want\\s+(.*)$")
var wantArgRe = regexp.MustCompile("^\\s*(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// expectation is one `want` regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each testdata package, applies the analyzer, and reports any
// mismatch between diagnostics and want expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	moduleRoot := findModuleRoot(t)

	fset := token.NewFileSet()
	type loaded struct {
		path  string
		files []string
	}
	var pkgs []loaded
	imports := map[string]bool{}
	for _, p := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(p))
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading testdata package %s: %v", p, err)
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			t.Fatalf("testdata package %s has no Go files", p)
		}
		pkgs = append(pkgs, loaded{path: p, files: files})
	}
	// Scan imports up front, then resolve the whole universe through
	// build-cache export data in one go list call.
	impFset := token.NewFileSet()
	for i := range pkgs {
		for _, f := range pkgs[i].files {
			af, err := parser.ParseFile(impFset, f, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatal(err)
			}
			for _, imp := range af.Imports {
				imports[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
	}
	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	sort.Strings(importList)
	exports, err := load.Exports(moduleRoot, importList...)
	if err != nil {
		t.Fatalf("resolving testdata imports: %v", err)
	}
	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var lpkgs []*load.Package
	for _, p := range pkgs {
		lp, err := load.TypeCheck(fset, imp, p.path, p.files)
		if err != nil {
			t.Fatalf("type-checking testdata package %s: %v", p.path, err)
		}
		lpkgs = append(lpkgs, lp)
	}

	findings, err := checker.Run([]*analysis.Analyzer{a}, lpkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, lpkgs)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", posKey(f.Pos.Filename, f.Pos.Line), f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic matching %q, got none", posKey(w.file, w.line), w.re)
		}
	}
}

// claim marks the first unmatched expectation covering the finding.
func claim(wants []*expectation, f checker.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// collectWants extracts want expectations from every comment in the loaded
// files.
func collectWants(t *testing.T, pkgs []*load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, af := range pkg.Files {
			for _, cg := range af.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := m[1]
					n := 0
					for {
						am := wantArgRe.FindStringSubmatch(rest)
						if am == nil {
							break
						}
						raw := am[1]
						var pat string
						if raw[0] == '`' {
							pat = raw[1 : len(raw)-1]
						} else {
							pat = raw[1 : len(raw)-1] // good enough: testdata avoids escapes
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
						rest = rest[len(am[0]):]
						n++
					}
					if n == 0 {
						t.Fatalf("%s:%d: want comment with no regexp arguments", pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return wants
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test directory")
		}
		dir = parent
	}
}
