// Package unit implements the `go vet -vettool` protocol (the x/tools
// "unitchecker" role): cmd/go invokes the tool once per package with a JSON
// config file describing the package's sources and the export-data files of
// its dependencies, plus two handshake flags (-flags, -V=full). Running
// under vet gets spatiallint build-tag-correct file sets and per-package
// caching for free.
package unit

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"spatialcrowd/internal/analysis"
	"spatialcrowd/internal/analysis/checker"
	"spatialcrowd/internal/analysis/load"
)

// vetConfig is the subset of cmd/go's vet.cfg the checker consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main handles one vet invocation if args match the protocol, returning
// (exitCode, true); (0, false) means the arguments are not a vet handshake
// and the caller should run its own CLI.
func Main(analyzers []*analysis.Analyzer, args []string, stdout, stderr io.Writer) (int, bool) {
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			// No tool-specific flags; vet needs valid JSON here.
			fmt.Fprintln(stdout, "[]")
			return 0, true
		case strings.HasPrefix(args[0], "-V="):
			// The version string keys vet's result cache. It is static, so
			// rebuilding the tool after changing an analyzer requires
			// `go clean -cache` (or a fresh CI runner) to drop stale vet
			// results; the standalone `spatiallint ./...` mode has no cache.
			fmt.Fprintln(stdout, "spatiallint version 1")
			return 0, true
		case strings.HasSuffix(args[0], ".cfg"):
			return runCfg(analyzers, args[0], stderr), true
		}
	}
	return 0, false
}

func runCfg(analyzers []*analysis.Analyzer, cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "spatiallint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// vet expects the facts output to exist even though spatiallint's
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: vet only wants facts, and we have none.
		return 0
	}

	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := load.TypeCheck(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "spatiallint: %v\n", err)
		return 1
	}
	findings, err := checker.Run(analyzers, []*load.Package{pkg})
	if err != nil {
		fmt.Fprintf(stderr, "spatiallint: %v\n", err)
		return 1
	}
	if len(findings) > 0 {
		checker.Print(stderr, findings)
		return 2 // vet's "diagnostics reported" exit status
	}
	return 0
}
