package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the error every injected fault surfaces. The engine treats
// it like any other append failure — the event is not applied — and the
// recovery harness treats its first occurrence as the crash point.
var ErrInjected = errors.New("wal: injected fault")

// Failpoints scripts the faults a FailpointStore injects. The zero value
// injects nothing.
type Failpoints struct {
	// CrashAfterBytes kills the store once this many bytes (summed across
	// all files) have been written: the crossing write is torn — a short
	// write that persists only the fitting prefix — and every later write
	// fails. Negative disables.
	CrashAfterBytes int64
	// FailSyncAt makes the Nth file Sync (1-based, counted across all
	// files) fail and kill the store. 0 disables.
	FailSyncAt int
	// LoseUnsynced makes Kill roll every file back to its last successfully
	// synced length — the OS view after a machine crash, where page-cache
	// contents that were never fsynced evaporate. Without it, Kill models a
	// process crash: everything written survives.
	LoseUnsynced bool
}

// FailpointStore wraps a Store and injects crash faults per the script.
// After the store dies (budget exhausted, scripted sync failure, or Kill),
// every operation fails with ErrInjected; the wrapped store then holds
// exactly the bytes a real crash would have left, and recovery opens it
// directly.
type FailpointStore struct {
	mu      sync.Mutex
	inner   Store
	fp      Failpoints
	written int64
	syncs   int
	dead    bool
	files   map[string]*fpFile
}

// NewFailpointStore wraps inner with the scripted faults.
func NewFailpointStore(inner Store, fp Failpoints) *FailpointStore {
	if fp.CrashAfterBytes == 0 {
		fp.CrashAfterBytes = -1
	}
	return &FailpointStore{inner: inner, fp: fp, files: make(map[string]*fpFile)}
}

// Kill stops the store as a crash would: every later operation fails, and
// with Failpoints.LoseUnsynced the files roll back to their last synced
// length. Idempotent.
func (s *FailpointStore) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return
	}
	s.dieLocked()
}

// dieLocked marks the store crashed and, under LoseUnsynced, rolls every
// file back to its last synced length — the unsynced page-cache suffix a
// machine crash evaporates. Truncate errors are unreachable for the store
// kinds we wrap (sizes only shrink).
func (s *FailpointStore) dieLocked() {
	s.dead = true
	if !s.fp.LoseUnsynced {
		return
	}
	for _, f := range s.files {
		if f.synced < f.size {
			_ = f.inner.Truncate(f.synced)
			f.size = f.synced
		}
	}
}

// Dead reports whether the store has crashed.
func (s *FailpointStore) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

func (s *FailpointStore) List() ([]string, error) {
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if dead {
		return nil, ErrInjected
	}
	return s.inner.List()
}

func (s *FailpointStore) Create(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, ErrInjected
	}
	f, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	w := &fpFile{st: s, inner: f}
	s.files[name] = w
	return w, nil
}

func (s *FailpointStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, ErrInjected
	}
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Pre-existing bytes were durable before this incarnation opened them.
	w := &fpFile{st: s, inner: f, size: size, synced: size}
	s.files[name] = w
	return w, nil
}

func (s *FailpointStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrInjected
	}
	delete(s.files, name)
	return s.inner.Remove(name)
}

func (s *FailpointStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrInjected
	}
	return s.inner.Sync()
}

// fpFile tracks written vs synced sizes so Kill can model losing the
// unsynced suffix, and applies the write-budget and sync-failure scripts.
type fpFile struct {
	st     *FailpointStore
	inner  File
	size   int64 // bytes written through this handle's store incarnation
	synced int64 // size at the last successful Sync
}

func (f *fpFile) Write(p []byte) (int, error) {
	s := f.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return 0, ErrInjected
	}
	if s.fp.CrashAfterBytes >= 0 && s.written+int64(len(p)) > s.fp.CrashAfterBytes {
		// The crossing write tears: only the prefix that fits the budget
		// reaches the file, then the store dies.
		keep := s.fp.CrashAfterBytes - s.written
		n := 0
		if keep > 0 {
			n, _ = f.inner.Write(p[:keep])
		}
		s.written += int64(n)
		f.size += int64(n)
		s.dieLocked()
		return n, ErrInjected
	}
	n, err := f.inner.Write(p)
	s.written += int64(n)
	f.size += int64(n)
	return n, err
}

func (f *fpFile) Sync() error {
	s := f.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrInjected
	}
	s.syncs++
	if s.fp.FailSyncAt > 0 && s.syncs == s.fp.FailSyncAt {
		s.dieLocked()
		return ErrInjected
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.synced = f.size
	return nil
}

func (f *fpFile) ReadAt(p []byte, off int64) (int, error) {
	s := f.st
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if dead {
		return 0, ErrInjected
	}
	return f.inner.ReadAt(p, off)
}

func (f *fpFile) Size() (int64, error) {
	s := f.st
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if dead {
		return 0, ErrInjected
	}
	return f.inner.Size()
}

func (f *fpFile) Truncate(size int64) error {
	s := f.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrInjected
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	if size < f.size {
		f.size = size
	}
	if size < f.synced {
		f.synced = size
	}
	return nil
}

func (f *fpFile) Close() error { return f.inner.Close() }
