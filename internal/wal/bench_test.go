package wal

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkWALAppend documents the CPU cost an engine pays per appended
// record — framing, CRC32C, the store write — against the in-memory store,
// so the number is deterministic (no fsync or disk noise; the fsync cadence
// is a policy knob, not a per-record cost, and the crash tests own its
// correctness). Sealed segments are reclaimed as the run goes so memory
// stays bounded at any -benchtime.
func BenchmarkWALAppend(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(fmt.Sprintf("mem-%dB", size), func(b *testing.B) {
			l, err := Open(NewMemStore(), Options{Sync: SyncNever, SegmentBytes: 256 << 10})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := bytes.Repeat([]byte{0xA5}, size)
			b.SetBytes(int64(headerSize + size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(RecEvent, payload); err != nil {
					b.Fatal(err)
				}
				if i&0x1FFF == 0x1FFF {
					if _, err := l.TruncateBefore(l.LastLSN()); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
