// Package wal is a segmented, CRC32C-framed write-ahead log for the engine's
// event stream. Records carry a monotone log sequence number (LSN, starting
// at 1) and append through a pluggable Store backend (on-disk FileStore,
// in-memory MemStore, fault-injecting FailpointStore). The engine appends
// every accepted event before applying it, so crash recovery is: load the
// last checkpoint, then replay the WAL tail past the checkpoint's LSN —
// and because the engine is bit-deterministic for a fixed event order, the
// recovered state is exactly the uninterrupted run's.
//
// Frame layout (little-endian):
//
//	[0:4]  CRC32C over bytes [4:17+n]
//	[4:8]  payload length n
//	[8]    record type
//	[9:17] LSN
//	[17:]  payload (n bytes)
//
// Segments are named %016x.wal by the LSN of their first record and rotate
// at Options.SegmentBytes. Recovery truncates a torn final record (a crash
// mid-append) cleanly; any corruption with intact data after it — a bad
// frame in a non-final segment, or one followed by valid bytes — fails
// loudly with the segment name and byte offset, because silently dropping
// an interior record would desynchronize replay from the checkpoint ledger.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"sync"
)

// Record types. Unknown types are preserved and skipped by consumers, so
// the format can grow without breaking old logs.
const (
	// RecEvent frames one engine event (internal/engine's binary codec).
	RecEvent byte = 1
	// RecCheckpoint marks a durable engine snapshot; the payload is the
	// snapshot's covered LSN. Segments wholly below it are reclaimable.
	RecCheckpoint byte = 2
)

const (
	headerSize = 17
	// MaxRecordBytes caps a single payload: a length field beyond it is
	// corruption, not a record, so recovery never trusts a garbage length
	// into a giant allocation.
	MaxRecordBytes = 16 << 20

	segSuffix = ".wal"
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when Append fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// durable, at one fsync per event.
	SyncAlways SyncPolicy = iota
	// SyncBatch is group commit: fsync every Options.BatchAppends appends
	// (and on explicit Sync, rotation, and Close). Acknowledged-but-unsynced
	// records can be lost to a crash; callers that promise durability call
	// Sync at their commit points (the HTTP server syncs before every
	// ingest response).
	SyncBatch
	// SyncNever fsyncs only on explicit Sync, rotation, and Close.
	SyncNever
)

// Options parameterizes Open.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// BatchAppends is the group-commit size under SyncBatch (default 64).
	BatchAppends int
}

// Record is one framed entry handed to Replay callbacks.
type Record struct {
	LSN  uint64
	Type byte
	Data []byte
}

// CorruptError reports unrecoverable log corruption: a bad frame that is
// not a torn tail (see the package comment for the distinction).
type CorruptError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in segment %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

type segment struct {
	name string
	base uint64 // LSN of the segment's first record
	recs int    // records in the segment (maintained for the active one)
}

// Log is the write-ahead log. Safe for concurrent use; Append serializes
// internally (the engine additionally orders appends against its ingest
// queue so the log order is the apply order).
type Log struct {
	mu      sync.Mutex
	st      Store
	opt     Options
	segs    []segment
	cur     File // active segment handle (last of segs); nil until first append
	curSize int64
	next    uint64 // next LSN to assign; last appended is next-1
	durable uint64 // last LSN covered by a successful fsync
	pending int    // appends since the last fsync
	failed  error  // sticky: a failed append/sync poisons the log
	closed  bool
}

// Open scans and validates every segment in the store, truncates a torn
// tail (crash mid-append) and positions the log to append after the last
// intact record. It fails loudly on interior corruption or LSN gaps.
func Open(st Store, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.BatchAppends <= 0 {
		opt.BatchAppends = 64
	}
	l := &Log{st: st, opt: opt, next: 1}
	names, err := st.List()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		base, ok := parseSegName(name)
		if !ok {
			continue // foreign file in the store dir; not ours to touch
		}
		l.segs = append(l.segs, segment{name: name, base: base})
	}
	// List is sorted and names are fixed-width hex, so segs ascend by base.
	// The first retained segment sets the origin: TruncateBefore reclaims
	// whole segments from the front, so a store legitimately starts past
	// LSN 1 (those records live in a snapshot now).
	if len(l.segs) > 0 {
		l.next = l.segs[0].base
	}
	for i, seg := range l.segs {
		if seg.base != l.next {
			return nil, fmt.Errorf("wal: segment %s starts at LSN %d, want %d (gap or duplicate)",
				seg.name, seg.base, l.next)
		}
		last := i == len(l.segs)-1
		f, err := st.Open(seg.name)
		if err != nil {
			return nil, err
		}
		valid, recs, serr := scanSegment(f, seg.name, seg.base)
		if serr != nil && (!last || !isTornTail(serr)) {
			f.Close()
			return nil, serr
		}
		if serr != nil {
			// Torn tail of the final segment: the crash interrupted the
			// last append. Drop the fragment and make the cut durable.
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.name, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		l.segs[i].recs = recs
		l.next = seg.base + uint64(recs)
		if last {
			l.cur = f
			l.curSize = valid
		} else {
			if recs == 0 {
				f.Close()
				return nil, &CorruptError{Segment: seg.name, Offset: 0,
					Reason: "non-final segment is empty"}
			}
			f.Close()
		}
	}
	l.durable = l.next - 1
	return l, nil
}

// tornTail marks a scan error that is a clean tail truncation candidate
// when it occurs in the final segment.
type tornTail struct{ err *CorruptError }

func (e *tornTail) Error() string { return e.err.Error() }

func isTornTail(err error) bool {
	var t *tornTail
	return errors.As(err, &t)
}

// scanSegment walks a segment's frames validating lengths, CRCs, and LSN
// continuity. It returns the byte length and record count of the valid
// prefix; a non-nil error is either a *tornTail (the bad frame is the last
// thing in the file — truncatable if this is the final segment) or a
// *CorruptError (intact data follows the bad frame, or the frame itself is
// internally inconsistent mid-log).
func scanSegment(f File, name string, base uint64) (valid int64, recs int, err error) {
	size, err := f.Size()
	if err != nil {
		return 0, 0, err
	}
	var hdr [headerSize]byte
	off := int64(0)
	lsn := base
	for off < size {
		if size-off < headerSize {
			return off, recs, &tornTail{&CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("truncated header: %d bytes of %d", size-off, headerSize)}}
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return off, recs, fmt.Errorf("wal: reading %s at %d: %w", name, off, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if n > MaxRecordBytes {
			// The length field is garbage; nothing after it can be framed.
			return off, recs, &tornTail{&CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds cap %d", n, MaxRecordBytes)}}
		}
		end := off + headerSize + n
		if end > size {
			return off, recs, &tornTail{&CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("truncated payload: record ends at %d, segment has %d bytes", end, size)}}
		}
		frame := make([]byte, headerSize+n)
		if _, err := f.ReadAt(frame, off); err != nil {
			return off, recs, fmt.Errorf("wal: reading %s at %d: %w", name, off, err)
		}
		if got, want := crc32.Checksum(frame[4:], crcTable), binary.LittleEndian.Uint32(frame[0:4]); got != want {
			ce := &CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("CRC mismatch: computed %08x, stored %08x", got, want)}
			if end == size {
				// The bad frame is the very last thing in the file: a torn
				// in-place write at the tail. Truncatable.
				return off, recs, &tornTail{ce}
			}
			// Valid bytes follow: interior corruption. Dropping the record
			// would silently desynchronize replay — fail loudly.
			return off, recs, ce
		}
		if got := binary.LittleEndian.Uint64(frame[9:17]); got != lsn {
			return off, recs, &CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("LSN %d, want %d (gap or reorder)", got, lsn)}
		}
		lsn++
		recs++
		off = end
	}
	return off, recs, nil
}

// Append frames one record, assigns it the next LSN, and writes it to the
// active segment (rotating first when full), fsyncing per the policy. The
// returned LSN is 1-based and strictly increasing by 1.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	lsn := l.next
	frameLen := int64(headerSize + len(payload))
	if l.cur == nil || (l.curSize > 0 && l.curSize+frameLen > l.opt.SegmentBytes) {
		if err := l.rotateLocked(lsn); err != nil {
			return 0, err
		}
	}
	frame := make([]byte, frameLen)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	frame[8] = typ
	binary.LittleEndian.PutUint64(frame[9:17], lsn)
	copy(frame[headerSize:], payload)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.Checksum(frame[4:], crcTable))
	if _, err := l.cur.Write(frame); err != nil {
		// A short or failed write leaves an undefined tail; poison the log
		// so no later append can frame past it.
		l.failed = fmt.Errorf("wal: append failed, log needs recovery: %w", err)
		return 0, l.failed
	}
	l.next++
	l.curSize += frameLen
	l.segs[len(l.segs)-1].recs++
	l.pending++
	switch l.opt.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if l.pending >= l.opt.BatchAppends {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (fsync + close) and starts a new
// one whose name is the next LSN, making the new name durable with a
// directory barrier.
func (l *Log) rotateLocked(base uint64) error {
	if l.cur != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			l.failed = fmt.Errorf("wal: sealing segment: %w", err)
			return l.failed
		}
		l.cur = nil
	}
	name := segName(base)
	f, err := l.st.Create(name)
	if err != nil {
		l.failed = err
		return err
	}
	if err := l.st.Sync(); err != nil {
		f.Close()
		l.failed = err
		return err
	}
	l.cur = f
	l.curSize = 0
	l.segs = append(l.segs, segment{name: name, base: base})
	return nil
}

func (l *Log) syncLocked() error {
	if l.cur == nil || l.pending == 0 {
		// Nothing appended since the last fsync: the barrier is already in
		// place. This is what turns per-request Sync calls into group
		// commit — one fsync covers every append racing with it, and the
		// racers' own Sync calls collapse into no-ops.
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync failed, log needs recovery: %w", err)
		return l.failed
	}
	l.durable = l.next - 1
	l.pending = 0
	return nil
}

// Sync fsyncs the active segment: on return every appended record is
// durable. The group-commit barrier callers place at their commit points.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

// LastLSN reports the LSN of the last appended record (0 when empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// DurableLSN reports the last LSN covered by a successful fsync: the
// durable prefix a crash cannot lose.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Stats is a point-in-time snapshot for metrics.
type Stats struct {
	FirstLSN   uint64 // first retained LSN (0 when empty)
	LastLSN    uint64
	DurableLSN uint64
	Segments   int
	ActiveSize int64 // bytes in the active segment
}

// Stats snapshots the log's gauges.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{LastLSN: l.next - 1, DurableLSN: l.durable, Segments: len(l.segs), ActiveSize: l.curSize}
	if len(l.segs) > 0 && l.next > l.segs[0].base {
		s.FirstLSN = l.segs[0].base
	}
	return s
}

// Replay walks every record with LSN >= from in order. It fails if records
// in [from, LastLSN] have been truncated away — a caller asking for them
// holds a snapshot older than the retained tail, and silently skipping
// would lose events.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 1 {
		from = 1
	}
	if len(l.segs) > 0 && from < l.segs[0].base && from <= l.next-1 {
		return fmt.Errorf("wal: records %d..%d already truncated (log starts at %d); recovery needs a newer snapshot",
			from, l.segs[0].base-1, l.segs[0].base)
	}
	var hdr [headerSize]byte
	for i, seg := range l.segs {
		segEnd := seg.base + uint64(seg.recs) // one past the last LSN
		if segEnd <= from {
			continue
		}
		f := l.cur
		owned := false
		if i != len(l.segs)-1 {
			var err error
			if f, err = l.st.Open(seg.name); err != nil {
				return err
			}
			owned = true
		}
		err := func() error {
			off := int64(0)
			for lsn := seg.base; lsn < segEnd; lsn++ {
				if _, err := f.ReadAt(hdr[:], off); err != nil {
					return fmt.Errorf("wal: reading %s at %d: %w", seg.name, off, err)
				}
				n := int64(binary.LittleEndian.Uint32(hdr[4:8]))
				if lsn < from {
					off += headerSize + n
					continue
				}
				data := make([]byte, n)
				if n > 0 {
					if _, err := f.ReadAt(data, off+headerSize); err != nil {
						return fmt.Errorf("wal: reading %s at %d: %w", seg.name, off+headerSize, err)
					}
				}
				if err := fn(Record{LSN: lsn, Type: hdr[8], Data: data}); err != nil {
					return err
				}
				off += headerSize + n
			}
			return nil
		}()
		if owned {
			f.Close()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateBefore reclaims whole segments every record of which has LSN
// below lsn — called after a checkpoint covering lsn-1 became durable. The
// active segment is never removed; partial segments are kept (reclamation
// is segment-grained). Returns the number of segments removed.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[1].base <= lsn {
		if err := l.st.Remove(l.segs[0].name); err != nil {
			return removed, err
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := l.st.Sync(); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close fsyncs and closes the active segment. Further operations fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.cur == nil {
		return nil
	}
	err := l.failed
	if err == nil {
		err = l.syncLocked()
	}
	if cerr := l.cur.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.cur = nil
	return err
}

func segName(base uint64) string {
	return fmt.Sprintf("%016x%s", base, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) || len(name) != 16+len(segSuffix) {
		return 0, false
	}
	base, err := strconv.ParseUint(name[:16], 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}
