package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// payload builds a distinguishable record body for LSN i.
func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%06d-%s", i, strings.Repeat("x", i%7)))
}

// appendN appends records 1..n, failing the test on any error.
func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		lsn, err := l.Append(RecEvent, payload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
}

// collect replays from the given LSN into a map.
func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	if err := l.Replay(from, func(r Record) error {
		out[r.LSN] = r.Data
		return nil
	}); err != nil {
		t.Fatalf("replay from %d: %v", from, err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			st := Store(NewMemStore())
			if backend == "file" {
				fs, err := NewFileStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				st = fs
			}
			l, err := Open(st, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 1, 100)
			if got := l.LastLSN(); got != 100 {
				t.Fatalf("LastLSN = %d, want 100", got)
			}
			if got := l.DurableLSN(); got != 100 {
				t.Fatalf("DurableLSN = %d, want 100 under SyncAlways", got)
			}
			recs := collect(t, l, 1)
			if len(recs) != 100 {
				t.Fatalf("replayed %d records, want 100", len(recs))
			}
			for i := 1; i <= 100; i++ {
				if string(recs[uint64(i)]) != string(payload(i)) {
					t.Fatalf("record %d payload mismatch", i)
				}
			}
			// Mid-stream replay honors from.
			if got := len(collect(t, l, 60)); got != 41 {
				t.Fatalf("replay from 60 returned %d records, want 41", got)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen resumes the LSN sequence and keeps the history.
			l2, err := Open(st, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got := l2.LastLSN(); got != 100 {
				t.Fatalf("reopened LastLSN = %d, want 100", got)
			}
			appendN(t, l2, 101, 110)
			if got := len(collect(t, l2, 1)); got != 110 {
				t.Fatalf("after reopen+append, %d records, want 110", got)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	st := NewMemStore()
	l, err := Open(st, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 50)
	stats := l.Stats()
	if stats.Segments < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", stats.Segments)
	}
	names, _ := st.List()
	if len(names) != stats.Segments {
		t.Fatalf("store holds %d files, stats say %d segments", len(names), stats.Segments)
	}
	// Segment names are their base LSNs; the first is 1.
	if base, ok := parseSegName(names[0]); !ok || base != 1 {
		t.Fatalf("first segment %q, want base LSN 1", names[0])
	}
	if got := len(collect(t, l, 1)); got != 50 {
		t.Fatalf("replay across segments returned %d records, want 50", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen validates every segment and lands on the same position.
	l2, err := Open(st, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastLSN(); got != 50 {
		t.Fatalf("reopened LastLSN = %d, want 50", got)
	}
	l2.Close()
}

func TestTruncateBefore(t *testing.T) {
	st := NewMemStore()
	l, err := Open(st, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 60)
	first := l.Stats()
	if first.Segments < 4 {
		t.Fatalf("need several segments, got %d", first.Segments)
	}
	removed, err := l.TruncateBefore(31)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	stats := l.Stats()
	if stats.FirstLSN > 31 {
		t.Fatalf("truncation dropped needed records: FirstLSN = %d", stats.FirstLSN)
	}
	// Replaying the retained tail works; replaying past-truncation data
	// fails loudly instead of silently skipping.
	if got := len(collect(t, l, 31)); got != 30 {
		t.Fatalf("replay from 31 returned %d records, want 30", got)
	}
	if stats.FirstLSN > 1 {
		if err := l.Replay(1, func(Record) error { return nil }); err == nil {
			t.Fatal("Replay(1) after truncation should fail (records gone)")
		}
	}
	// The active segment never goes away.
	if _, err := l.TruncateBefore(1 << 60); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments != 1 || s.LastLSN != 60 {
		t.Fatalf("after full truncation: %d segments, LastLSN %d; want 1 / 60", s.Segments, s.LastLSN)
	}
	l.Close()

	// A truncated store reopens: the first retained segment defines the
	// origin, and the LSN sequence continues where it left off.
	l2, err := Open(st, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen after truncation: %v", err)
	}
	if s := l2.Stats(); s.LastLSN != 60 || s.FirstLSN <= 31 {
		t.Fatalf("reopened stats %+v, want LastLSN 60 with a truncated front", s)
	}
	appendN(t, l2, 61, 65)
	l2.Close()
}

func TestGroupCommitSyncPolicy(t *testing.T) {
	st := NewMemStore()
	fp := NewFailpointStore(st, Failpoints{}) // no faults; just sync/size tracking
	l, err := Open(fp, Options{Sync: SyncBatch, BatchAppends: 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 9)
	if got := l.DurableLSN(); got != 0 {
		t.Fatalf("DurableLSN = %d before the batch filled, want 0", got)
	}
	appendN(t, l, 10, 10)
	if got := l.DurableLSN(); got != 10 {
		t.Fatalf("DurableLSN = %d after 10 appends, want 10 (group commit)", got)
	}
	appendN(t, l, 11, 14)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 14 {
		t.Fatalf("DurableLSN = %d after explicit Sync, want 14", got)
	}
	l.Close()
}

// TestTornTailTruncatedCleanly covers the satellite requirement: a torn
// final record — header or payload cut short, or a CRC-bad frame at the
// very end — is dropped cleanly on reopen, and the log appends past the
// cut.
func TestTornTailTruncatedCleanly(t *testing.T) {
	// tears maps a name to how many bytes to chop off the final segment.
	tears := []struct {
		name string
		chop int64
	}{
		{"mid-payload", 3},
		{"mid-header", headerSize + 8}, // leaves a partial header of the last record
		{"header-only", 0},             // handled below by appending garbage instead
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			l, err := Open(fs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 1, 20)
			l.Close()

			names, _ := fs.List()
			segPath := filepath.Join(dir, names[len(names)-1])
			data, err := os.ReadFile(segPath)
			if err != nil {
				t.Fatal(err)
			}
			switch tc.name {
			case "header-only":
				// A bare partial header after the last good record.
				data = append(data, 0xde, 0xad, 0xbe)
			default:
				data = data[:int64(len(data))-tc.chop]
			}
			if err := os.WriteFile(segPath, data, 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(fs, Options{})
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			wantLast := uint64(19)
			if tc.name == "header-only" {
				wantLast = 20 // nothing was chopped, only garbage appended
			}
			if got := l2.LastLSN(); got != wantLast {
				t.Fatalf("LastLSN after torn-tail recovery = %d, want %d", got, wantLast)
			}
			// The log is appendable past the cut and the sequence heals.
			if lsn, err := l2.Append(RecEvent, []byte("resumed")); err != nil || lsn != wantLast+1 {
				t.Fatalf("append after recovery: lsn %d err %v", lsn, err)
			}
			if got := uint64(len(collect(t, l2, 1))); got != wantLast+1 {
				t.Fatalf("replay after recovery returned %d records, want %d", got, wantLast+1)
			}
			l2.Close()
		})
	}
}

// TestTornInteriorFailsLoudly covers the other half of the satellite: a
// corrupt record with intact data after it — in a sealed segment, or
// mid-segment with valid frames following — must fail Open with the
// segment name and byte offset, never be silently dropped.
func TestTornInteriorFailsLoudly(t *testing.T) {
	t.Run("flip-in-sealed-segment", func(t *testing.T) {
		dir := t.TempDir()
		fs, err := NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(fs, Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 1, 40) // several segments
		l.Close()
		names, _ := fs.List()
		if len(names) < 3 {
			t.Fatalf("need >= 3 segments, got %d", len(names))
		}
		victim := names[1]
		segPath := filepath.Join(dir, victim)
		data, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		data[headerSize+2] ^= 0x40 // flip a payload bit of the segment's first record
		if err := os.WriteFile(segPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(fs, Options{SegmentBytes: 256})
		if err == nil {
			t.Fatal("Open succeeded over interior corruption")
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *CorruptError", err)
		}
		if ce.Segment != victim || ce.Offset != 0 {
			t.Fatalf("corruption located at %s:%d, want %s:0", ce.Segment, ce.Offset, victim)
		}
	})

	t.Run("flip-mid-active-segment", func(t *testing.T) {
		dir := t.TempDir()
		fs, err := NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 1, 20)
		l.Close()
		names, _ := fs.List()
		segPath := filepath.Join(dir, names[0])
		data, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt the FIRST record: valid frames follow it, so this is
		// interior damage even though the segment is the active one.
		data[headerSize] ^= 0x01
		if err := os.WriteFile(segPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(fs, Options{})
		var ce *CorruptError
		if err == nil || !errors.As(err, &ce) {
			t.Fatalf("want *CorruptError for mid-segment flip, got %v", err)
		}
		if ce.Segment != names[0] || ce.Offset != 0 {
			t.Fatalf("corruption located at %s:%d, want %s:0", ce.Segment, ce.Offset, names[0])
		}
		if !strings.Contains(ce.Error(), "offset") {
			t.Fatalf("error %q does not name the offset", ce.Error())
		}
	})

	t.Run("lsn-gap", func(t *testing.T) {
		st := NewMemStore()
		l, err := Open(st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 1, 3)
		l.Close()
		// Hand-frame a record with a skipped LSN and append it raw.
		f, err := st.Open(segName(1))
		if err != nil {
			t.Fatal(err)
		}
		body := []byte("gap")
		frame := make([]byte, headerSize+len(body))
		binary.LittleEndian.PutUint32(frame[4:8], uint32(len(body)))
		frame[8] = RecEvent
		binary.LittleEndian.PutUint64(frame[9:17], 9) // want 4
		copy(frame[headerSize:], body)
		binary.LittleEndian.PutUint32(frame[0:4], crc32Of(frame[4:]))
		if _, err := f.Write(frame); err != nil {
			t.Fatal(err)
		}
		_, err = Open(st, Options{})
		var ce *CorruptError
		if err == nil || !errors.As(err, &ce) {
			t.Fatalf("want *CorruptError for LSN gap, got %v", err)
		}
		if !strings.Contains(err.Error(), "LSN") {
			t.Fatalf("error %q does not mention the LSN", err)
		}
	})
}

func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}

func TestAppendAfterFailureIsRefused(t *testing.T) {
	st := NewMemStore()
	fp := NewFailpointStore(st, Failpoints{CrashAfterBytes: 200})
	l, err := Open(fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	n := 0
	for i := 1; i <= 100; i++ {
		if _, err := l.Append(RecEvent, payload(i)); err != nil {
			firstErr = err
			break
		}
		n++
	}
	if firstErr == nil {
		t.Fatal("write budget never tripped")
	}
	if !errors.Is(firstErr, ErrInjected) {
		t.Fatalf("append error %v does not wrap ErrInjected", firstErr)
	}
	// The log is poisoned: no append may frame past an undefined tail.
	if _, err := l.Append(RecEvent, []byte("after")); err == nil {
		t.Fatal("append succeeded on a failed log")
	}
	// Recovery over the underlying store sees the durable prefix and the
	// torn record is dropped.
	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if got := l2.LastLSN(); got != uint64(n) {
		t.Fatalf("recovered LastLSN = %d, want %d accepted appends", got, n)
	}
	l2.Close()
}

func TestFailpointLoseUnsynced(t *testing.T) {
	st := NewMemStore()
	fp := NewFailpointStore(st, Failpoints{LoseUnsynced: true})
	l, err := Open(fp, Options{Sync: SyncBatch, BatchAppends: 5})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 13) // 10 synced (two batches), 3 in the page cache
	if got := l.DurableLSN(); got != 10 {
		t.Fatalf("DurableLSN = %d, want 10", got)
	}
	fp.Kill()
	// Machine crash: the unsynced suffix evaporates; recovery sees 10.
	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if got := l2.LastLSN(); got != 10 {
		t.Fatalf("recovered LastLSN = %d, want the durable 10", got)
	}
	l2.Close()
}

func TestFailpointSyncError(t *testing.T) {
	st := NewMemStore()
	fp := NewFailpointStore(st, Failpoints{FailSyncAt: 3, LoseUnsynced: true})
	l, err := Open(fp, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	n := 0
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(RecEvent, payload(i)); err != nil {
			firstErr = err
			break
		}
		n++
	}
	if firstErr == nil || !errors.Is(firstErr, ErrInjected) {
		t.Fatalf("scripted sync failure did not surface: %v", firstErr)
	}
	if n != 2 {
		t.Fatalf("accepted %d appends before the 3rd sync failed, want 2", n)
	}
	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if got := l2.LastLSN(); got != 2 {
		t.Fatalf("recovered LastLSN = %d, want 2 synced records", got)
	}
	l2.Close()
}

func TestCheckpointMarkersSkipped(t *testing.T) {
	st := NewMemStore()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 5)
	var lsn [8]byte
	binary.LittleEndian.PutUint64(lsn[:], 5)
	if got, err := l.Append(RecCheckpoint, lsn[:]); err != nil || got != 6 {
		t.Fatalf("marker append: lsn %d err %v", got, err)
	}
	events := 0
	if err := l.Replay(1, func(r Record) error {
		if r.Type == RecEvent {
			events++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if events != 5 {
		t.Fatalf("replayed %d event records, want 5 (marker filtered by type)", events)
	}
	l.Close()
}
