package wal

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Store is the pluggable storage backend a Log writes its segments through:
// a flat namespace of append-only files plus a directory-level durability
// barrier. FileStore is the on-disk implementation, MemStore the in-memory
// one (tests, ephemeral engines), and FailpointStore wraps either to inject
// crash faults.
type Store interface {
	// List returns every file name in the store, sorted ascending.
	List() ([]string, error)
	// Create makes a new empty file; it fails if the name already exists.
	Create(name string) (File, error)
	// Open opens an existing file for appending and random reads.
	Open(name string) (File, error)
	// Remove deletes a file by name.
	Remove(name string) error
	// Sync is the directory barrier: after it returns, creations and
	// removals performed so far survive a crash.
	Sync() error
}

// File is one segment file. Write appends at the current end (segments are
// append-only; Truncate is only used to drop a torn tail at recovery).
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync makes every appended byte durable.
	Sync() error
	// Size reports the current length in bytes.
	Size() (int64, error)
	// Truncate discards every byte at or past size.
	Truncate(size int64) error
}

// MemStore is an in-memory Store: instantly durable, reopenable across Log
// instances (the data lives in the store, not the handles). Safe for
// concurrent use.
type MemStore struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string]*memFile)}
}

func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func (m *MemStore) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return nil, fmt.Errorf("wal: segment %s already exists", name)
	}
	f := &memFile{}
	m.files[name] = f
	return f, nil
}

func (m *MemStore) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: segment %s does not exist", name)
	}
	return f, nil
}

func (m *MemStore) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("wal: segment %s does not exist", name)
	}
	delete(m.files, name)
	return nil
}

func (m *MemStore) Sync() error { return nil }

// memFile is a shared byte buffer: handles returned by Create and Open alias
// the same storage, so a reopened segment sees everything appended through
// any prior handle.
type memFile struct {
	mu  sync.Mutex
	buf []byte
}

func (f *memFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off > int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.buf)), nil
}

func (f *memFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("wal: truncate to %d outside [0,%d]", size, len(f.buf))
	}
	f.buf = f.buf[:size]
	return nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
