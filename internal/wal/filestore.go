package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FileStore is the on-disk Store: one flat directory of segment files.
// Files open in append mode (every Write lands at the current end, even
// after a recovery Truncate), and Sync fsyncs the directory so created and
// removed segment names survive a crash — the same barrier the atomic
// checkpoint writer uses.
type FileStore struct {
	dir string
}

// NewFileStore opens (creating if needed) the directory the segments live
// in.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir reports the store's directory path.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", s.dir, err)
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

func (s *FileStore) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, name),
		os.O_RDWR|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	return (*osFile)(f), nil
}

func (s *FileStore) Open(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment %s: %w", name, err)
	}
	return (*osFile)(f), nil
}

func (s *FileStore) Remove(name string) error {
	if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("wal: removing segment %s: %w", name, err)
	}
	return nil
}

// Sync fsyncs the directory: the metadata barrier that makes segment
// creations and removals durable.
func (s *FileStore) Sync() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("wal: opening store dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing store dir: %w", err)
	}
	return nil
}

// osFile adapts *os.File to the File interface (Size via Stat).
type osFile os.File

func (f *osFile) Write(p []byte) (int, error)             { return (*os.File)(f).Write(p) }
func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return (*os.File)(f).ReadAt(p, off) }
func (f *osFile) Close() error                            { return (*os.File)(f).Close() }
func (f *osFile) Sync() error                             { return (*os.File)(f).Sync() }
func (f *osFile) Truncate(size int64) error               { return (*os.File)(f).Truncate(size) }

func (f *osFile) Size() (int64, error) {
	st, err := (*os.File)(f).Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
