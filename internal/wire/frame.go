package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format: a length-prefixed, CRC-checked envelope
//
//	[len u32 LE | type u8 | crc u32 LE | payload]
//
// where len covers everything after the length field itself (type + crc +
// payload, so len = HeaderLen - 4 + len(payload)) and crc is the CRC-32C
// (Castagnoli) of the payload — the same polynomial the WAL's segment frames
// use. A batch frame's payload is events concatenated (AppendEvents /
// DecodeEvents); events are self-delimiting, so resuming a partially
// accepted batch is slicing the payload at the accepted prefix's byte
// offset and re-framing the tail.

const (
	// FrameBatch carries a batch of concatenated events: the only frame type
	// the ingest fast path accepts today. New types extend the protocol
	// without changing the envelope.
	FrameBatch byte = 1

	// HeaderLen is the fixed envelope prefix: len u32 + type u8 + crc u32.
	HeaderLen = 4 + 1 + 4

	// MaxFrameBytes caps a frame's declared length. A stream announcing a
	// larger frame is rejected before any allocation — the guard that keeps
	// a hostile length prefix from ballooning server memory.
	MaxFrameBytes = 16 << 20

	// ContentType selects the binary ingest fast path on the server's
	// ingest endpoints.
	ContentType = "application/x-spatialcrowd-frame"
)

// Frame decode errors. FrameReader wraps them with stream position context;
// use errors.Is to classify.
var (
	// ErrFrameTooLarge marks a length prefix beyond MaxFrameBytes.
	ErrFrameTooLarge = errors.New("wire: frame length exceeds limit")
	// ErrFrameCRC marks a payload whose checksum does not match its header.
	ErrFrameCRC = errors.New("wire: frame crc mismatch")
	// ErrFrameTruncated marks a stream that ended mid-frame.
	ErrFrameTruncated = errors.New("wire: truncated frame")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PutFrameHeader writes the frame envelope for the given payload into hdr,
// which must be at least HeaderLen bytes. Split out from AppendFrame so a
// caller that already holds the payload bytes (the load generator resuming
// a batch tail) can frame them without copying.
func PutFrameHeader(hdr []byte, typ byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr, uint32(1+4+len(payload)))
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:], crc32.Checksum(payload, castagnoli))
}

// AppendFrame appends a complete frame (header + payload) to dst.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [HeaderLen]byte
	PutFrameHeader(hdr[:], typ, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// AppendBatchFrame encodes evs as one batch frame appended to dst.
func AppendBatchFrame(dst []byte, evs []Event) ([]byte, error) {
	payload, err := AppendEvents(nil, evs)
	if err != nil {
		return dst, err
	}
	return AppendFrame(dst, FrameBatch, payload), nil
}

// FrameReader decodes a stream of frames from an io.Reader into one
// reusable buffer: after the first few frames, Next performs zero
// allocations regardless of how many frames follow. The payload it returns
// aliases the internal buffer and is valid only until the next call.
type FrameReader struct {
	r       io.Reader
	hdr     [HeaderLen]byte
	buf     []byte
	max     int
	frames  int
	payload int64
}

// NewFrameReader wraps r. maxFrame caps the accepted frame length
// (<= 0 selects MaxFrameBytes).
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	fr := &FrameReader{max: maxFrame}
	if fr.max <= 0 || fr.max > MaxFrameBytes {
		fr.max = MaxFrameBytes
	}
	fr.Reset(r)
	return fr
}

// Reset re-targets the reader at a new stream, keeping the payload buffer —
// the hook that lets a pool recycle readers across connections.
func (fr *FrameReader) Reset(r io.Reader) {
	fr.r = r
	fr.frames = 0
	fr.payload = 0
}

// Frames reports how many frames Next has decoded since the last Reset;
// PayloadBytes reports their cumulative payload size.
func (fr *FrameReader) Frames() int { return fr.frames }

// PayloadBytes reports the cumulative payload bytes decoded since Reset.
func (fr *FrameReader) PayloadBytes() int64 { return fr.payload }

// Next reads and verifies one frame. It returns io.EOF at a clean stream
// end (between frames); a stream ending anywhere inside a frame is
// ErrFrameTruncated, a checksum failure ErrFrameCRC, an oversized length
// prefix ErrFrameTooLarge — corruption is always an explicit rejection,
// never a silent drop.
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:4]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: stream ended inside the length prefix of frame %d", ErrFrameTruncated, fr.frames)
	}
	length := binary.LittleEndian.Uint32(fr.hdr[:4])
	if length < HeaderLen-4 {
		return 0, nil, fmt.Errorf("wire: frame %d declares %d bytes, below the %d-byte envelope minimum", fr.frames, length, HeaderLen-4)
	}
	if int64(length) > int64(fr.max) {
		return 0, nil, fmt.Errorf("%w: frame %d declares %d bytes (limit %d)", ErrFrameTooLarge, fr.frames, length, fr.max)
	}
	if _, err := io.ReadFull(fr.r, fr.hdr[4:]); err != nil {
		return 0, nil, fmt.Errorf("%w: stream ended inside the header of frame %d", ErrFrameTruncated, fr.frames)
	}
	typ = fr.hdr[4]
	n := int(length) - (HeaderLen - 4)
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	payload = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: stream ended inside the %d-byte payload of frame %d", ErrFrameTruncated, n, fr.frames)
	}
	want := crc32.Checksum(payload, castagnoli)
	if got := binary.LittleEndian.Uint32(fr.hdr[5:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame %d header %08x, payload %08x", ErrFrameCRC, fr.frames, got, want)
	}
	fr.frames++
	fr.payload += int64(n)
	return typ, payload, nil
}
