// Package wire is the canonical binary encoding of engine events: one
// fixed-width little-endian codec shared by the durable write-ahead log
// (internal/engine's WAL records) and the network ingest fast path
// (internal/server's binary frames), so an event has exactly one byte-level
// representation wherever it travels. Floats are IEEE-754 bits, so a decoded
// event is bit-identical to the encoded one — the property both the WAL's
// exact-recovery guarantee and the server's replay-equivalence contract rest
// on.
//
// Two layers:
//
//   - Event codec: AppendEvent / DecodeEvent serialize one event as a
//     1-byte kind tag followed by the kind's fixed-width fields. Events are
//     self-delimiting, so a batch payload is simply events concatenated —
//     which is what makes mid-batch resume a byte-offset slice instead of a
//     re-encode.
//   - Frame format: a length-prefixed, CRC-checked envelope
//     [len u32 | type u8 | crc32c u32 | payload] carrying a batch of events
//     per frame. FrameReader decodes a stream of frames into a reusable
//     buffer with zero per-event allocations in steady state.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

// Kind discriminates the event union. The values are pinned to the engine's
// public event kinds (engine.Kind) — the WAL format and the network frames
// depend on them never changing.
type Kind uint8

const (
	KindTaskArrival Kind = iota + 1
	KindWorkerOnline
	KindWorkerOffline
	KindWorkerMove
	KindAcceptDecision
	KindTick
)

// Event is the codec's neutral event form: the union of every public engine
// event's payload, without the engine's runtime-only fields (arrival stamps,
// control payloads). internal/engine converts to and from its own Event with
// Event.Wire / engine.EventFromWire.
type Event struct {
	Kind     Kind
	Task     market.Task   // KindTaskArrival
	Worker   market.Worker // KindWorkerOnline
	WorkerID int           // KindWorkerOffline, KindWorkerMove
	Loc      geo.Point     // KindWorkerMove
	TaskID   int           // KindAcceptDecision
	Accept   bool          // KindAcceptDecision
	Period   int           // KindTick
}

// Fixed frame sizes per kind (1 tag byte + little-endian fields).
const (
	taskArrivalLen    = 1 + 8*8 // id, period, origin, dest, distance, valuation
	workerOnlineLen   = 1 + 6*8 // id, period, loc, radius, duration
	workerOfflineLen  = 1 + 8   // id
	workerMoveLen     = 1 + 3*8 // id, to
	acceptDecisionLen = 1 + 8 + 1
	tickLen           = 1 + 8
)

// EventLen reports the encoded size of an event of the given kind, or false
// for an unknown kind.
func EventLen(k Kind) (int, bool) {
	switch k {
	case KindTaskArrival:
		return taskArrivalLen, true
	case KindWorkerOnline:
		return workerOnlineLen, true
	case KindWorkerOffline:
		return workerOfflineLen, true
	case KindWorkerMove:
		return workerMoveLen, true
	case KindAcceptDecision:
		return acceptDecisionLen, true
	case KindTick:
		return tickLen, true
	}
	return 0, false
}

// AppendEvent appends the event's canonical encoding to dst and returns the
// extended slice. Unknown kinds error (dst is returned unchanged).
func AppendEvent(dst []byte, ev Event) ([]byte, error) {
	switch ev.Kind {
	case KindTaskArrival:
		dst = append(dst, byte(ev.Kind))
		dst = appendI64(dst, int64(ev.Task.ID))
		dst = appendI64(dst, int64(ev.Task.Period))
		dst = appendF64(dst, ev.Task.Origin.X)
		dst = appendF64(dst, ev.Task.Origin.Y)
		dst = appendF64(dst, ev.Task.Dest.X)
		dst = appendF64(dst, ev.Task.Dest.Y)
		dst = appendF64(dst, ev.Task.Distance)
		return appendF64(dst, ev.Task.Valuation), nil
	case KindWorkerOnline:
		dst = append(dst, byte(ev.Kind))
		dst = appendI64(dst, int64(ev.Worker.ID))
		dst = appendI64(dst, int64(ev.Worker.Period))
		dst = appendF64(dst, ev.Worker.Loc.X)
		dst = appendF64(dst, ev.Worker.Loc.Y)
		dst = appendF64(dst, ev.Worker.Radius)
		return appendI64(dst, int64(ev.Worker.Duration)), nil
	case KindWorkerOffline:
		dst = append(dst, byte(ev.Kind))
		return appendI64(dst, int64(ev.WorkerID)), nil
	case KindWorkerMove:
		dst = append(dst, byte(ev.Kind))
		dst = appendI64(dst, int64(ev.WorkerID))
		dst = appendF64(dst, ev.Loc.X)
		return appendF64(dst, ev.Loc.Y), nil
	case KindAcceptDecision:
		dst = append(dst, byte(ev.Kind))
		dst = appendI64(dst, int64(ev.TaskID))
		if ev.Accept {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case KindTick:
		dst = append(dst, byte(ev.Kind))
		return appendI64(dst, int64(ev.Period)), nil
	}
	return dst, fmt.Errorf("wire: cannot encode unknown event kind %d", ev.Kind)
}

// DecodeEvent decodes one event from the front of b and reports how many
// bytes it consumed, so concatenated events (a batch payload, a WAL record
// sequence) decode by repeated calls. A short buffer, an unknown kind, or a
// malformed trailer byte is an error — corrupt input is rejected, never
// silently skipped.
func DecodeEvent(b []byte) (Event, int, error) {
	if len(b) == 0 {
		return Event{}, 0, errors.New("wire: empty event record")
	}
	kind := Kind(b[0])
	want, ok := EventLen(kind)
	if !ok {
		return Event{}, 0, fmt.Errorf("wire: unknown event kind %d", b[0])
	}
	if len(b) < want {
		return Event{}, 0, fmt.Errorf("wire: truncated %d-kind event: %d bytes, want %d", kind, len(b), want)
	}
	switch kind {
	case KindTaskArrival:
		return Event{Kind: kind, Task: market.Task{
			ID:        int(getI64(b[1:])),
			Period:    int(getI64(b[9:])),
			Origin:    geo.Point{X: getF64(b[17:]), Y: getF64(b[25:])},
			Dest:      geo.Point{X: getF64(b[33:]), Y: getF64(b[41:])},
			Distance:  getF64(b[49:]),
			Valuation: getF64(b[57:]),
		}}, want, nil
	case KindWorkerOnline:
		return Event{Kind: kind, Worker: market.Worker{
			ID:       int(getI64(b[1:])),
			Period:   int(getI64(b[9:])),
			Loc:      geo.Point{X: getF64(b[17:]), Y: getF64(b[25:])},
			Radius:   getF64(b[33:]),
			Duration: int(getI64(b[41:])),
		}}, want, nil
	case KindWorkerOffline:
		return Event{Kind: kind, WorkerID: int(getI64(b[1:]))}, want, nil
	case KindWorkerMove:
		return Event{
			Kind:     kind,
			WorkerID: int(getI64(b[1:])),
			Loc:      geo.Point{X: getF64(b[9:]), Y: getF64(b[17:])},
		}, want, nil
	case KindAcceptDecision:
		if b[9] > 1 {
			return Event{}, 0, fmt.Errorf("wire: accept-decision flag byte %d, want 0 or 1", b[9])
		}
		return Event{Kind: kind, TaskID: int(getI64(b[1:])), Accept: b[9] == 1}, want, nil
	default: // KindTick; EventLen excluded everything else
		return Event{Kind: kind, Period: int(getI64(b[1:]))}, want, nil
	}
}

// AppendEvents appends the concatenated encoding of evs to dst: a batch
// frame's payload. The first unknown kind aborts with an error.
func AppendEvents(dst []byte, evs []Event) ([]byte, error) {
	for i, ev := range evs {
		var err error
		if dst, err = AppendEvent(dst, ev); err != nil {
			return dst, fmt.Errorf("wire: event %d: %w", i, err)
		}
	}
	return dst, nil
}

// DecodeEvents decodes a concatenation of events (a batch payload),
// appending into dst — pass a reused slice for zero steady-state
// allocations. Any malformed or truncated event fails the whole batch.
func DecodeEvents(payload []byte, dst []Event) ([]Event, error) {
	for i := 0; len(payload) > 0; i++ {
		ev, n, err := DecodeEvent(payload)
		if err != nil {
			return dst, fmt.Errorf("wire: batch event %d: %w", i, err)
		}
		payload = payload[n:]
		dst = append(dst, ev)
	}
	return dst, nil
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func getI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }
func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
