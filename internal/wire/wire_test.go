package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindTaskArrival, Task: market.Task{
			ID: 12345, Period: 7,
			Origin:   geo.Point{X: 1.25, Y: -3.75},
			Dest:     geo.Point{X: math.Pi, Y: math.SmallestNonzeroFloat64},
			Distance: 4.5, Valuation: 17.125,
		}},
		{Kind: KindWorkerOnline, Worker: market.Worker{
			ID: -9, Period: 3,
			Loc: geo.Point{X: 0, Y: math.MaxFloat64}, Radius: 2.5, Duration: 40,
		}},
		{Kind: KindWorkerOffline, WorkerID: 1 << 40},
		{Kind: KindWorkerMove, WorkerID: 77, Loc: geo.Point{X: -0.5, Y: 0.5}},
		{Kind: KindAcceptDecision, TaskID: 13, Accept: true},
		{Kind: KindAcceptDecision, TaskID: 14, Accept: false},
		{Kind: KindTick, Period: 1 << 30},
	}
}

// TestEventRoundTrip pins the codec: every kind survives encode -> decode
// bit-identically, and the consumed length equals EventLen.
func TestEventRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents() {
		b, err := AppendEvent(nil, ev)
		if err != nil {
			t.Fatalf("AppendEvent(%d): %v", ev.Kind, err)
		}
		want, _ := EventLen(ev.Kind)
		if len(b) != want {
			t.Errorf("kind %d encoded to %d bytes, EventLen says %d", ev.Kind, len(b), want)
		}
		got, n, err := DecodeEvent(b)
		if err != nil {
			t.Fatalf("DecodeEvent(%d): %v", ev.Kind, err)
		}
		if n != len(b) {
			t.Errorf("kind %d consumed %d of %d bytes", ev.Kind, n, len(b))
		}
		if got != ev {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", ev, got)
		}
	}
}

// TestEventRejectsMalformed: truncation, unknown kinds, and an off-range
// accept flag are explicit errors, never zero-value decodes.
func TestEventRejectsMalformed(t *testing.T) {
	if _, _, err := DecodeEvent(nil); err == nil {
		t.Error("DecodeEvent(nil) accepted")
	}
	if _, _, err := DecodeEvent([]byte{0}); err == nil {
		t.Error("kind 0 accepted")
	}
	if _, _, err := DecodeEvent([]byte{byte(KindTick) + 1}); err == nil {
		t.Error("kind past KindTick accepted")
	}
	full, err := AppendEvent(nil, sampleEvents()[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeEvent(full[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	accept, err := AppendEvent(nil, Event{Kind: KindAcceptDecision, TaskID: 1, Accept: true})
	if err != nil {
		t.Fatal(err)
	}
	accept[len(accept)-1] = 2
	if _, _, err := DecodeEvent(accept); err == nil {
		t.Error("accept flag byte 2 accepted")
	}
	if _, err := AppendEvent(nil, Event{Kind: 0}); err == nil {
		t.Error("AppendEvent encoded kind 0")
	}
}

// TestBatchFrameRoundTrip drives the full envelope: N events -> one batch
// frame -> FrameReader -> DecodeEvents, plus multi-frame streams and the
// byte-offset tail-resume path the load generator uses.
func TestBatchFrameRoundTrip(t *testing.T) {
	evs := sampleEvents()
	frame, err := AppendBatchFrame(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	// Two frames back to back decode independently.
	stream := append(append([]byte(nil), frame...), frame...)
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	for i := 0; i < 2; i++ {
		typ, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != FrameBatch {
			t.Fatalf("frame %d type %d", i, typ)
		}
		got, err := DecodeEvents(payload, nil)
		if err != nil {
			t.Fatalf("frame %d payload: %v", i, err)
		}
		if len(got) != len(evs) {
			t.Fatalf("frame %d decoded %d events, want %d", i, len(got), len(evs))
		}
		for j := range got {
			if got[j] != evs[j] {
				t.Errorf("frame %d event %d mismatch: %+v != %+v", i, j, got[j], evs[j])
			}
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after both frames: %v, want io.EOF", err)
	}
	if fr.Frames() != 2 || fr.PayloadBytes() != 2*int64(len(frame)-HeaderLen) {
		t.Errorf("reader counters: %d frames, %d payload bytes", fr.Frames(), fr.PayloadBytes())
	}

	// Tail resume: slice the payload at event k's byte offset and re-frame;
	// the re-framed tail must decode to exactly the remaining events.
	payload := frame[HeaderLen:]
	off := 0
	for k := 0; k < len(evs); k++ {
		tail := payload[off:]
		var hdr [HeaderLen]byte
		PutFrameHeader(hdr[:], FrameBatch, tail)
		refr := NewFrameReader(io.MultiReader(bytes.NewReader(hdr[:]), bytes.NewReader(tail)), 0)
		_, p, err := refr.Next()
		if err != nil {
			t.Fatalf("resume at event %d: %v", k, err)
		}
		got, err := DecodeEvents(p, nil)
		if err != nil {
			t.Fatalf("resume at event %d: %v", k, err)
		}
		if len(got) != len(evs)-k {
			t.Fatalf("resume at event %d decoded %d events, want %d", k, len(got), len(evs)-k)
		}
		n, _ := EventLen(evs[k].Kind)
		off += n
	}
}

// TestFrameRejects pins the rejection taxonomy: truncation anywhere inside
// a frame, a flipped payload byte, and a hostile length prefix each fail
// with their classified error.
func TestFrameRejects(t *testing.T) {
	frame, err := AppendBatchFrame(nil, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]), 0)
		if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d: %v, want ErrFrameTruncated", cut, err)
		}
	}
	for i := HeaderLen; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		fr := NewFrameReader(bytes.NewReader(bad), 0)
		if _, _, err := fr.Next(); !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("payload flip at %d: %v, want ErrFrameCRC", i, err)
		}
	}
	huge := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(huge, MaxFrameBytes+1)
	fr := NewFrameReader(bytes.NewReader(huge), 0)
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized len: %v, want ErrFrameTooLarge", err)
	}
	tiny := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(tiny, 3) // below the type+crc minimum
	fr = NewFrameReader(bytes.NewReader(tiny), 0)
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("sub-envelope len accepted")
	}
}

// FuzzWireFrameRoundTrip shakes the frame decoder with arbitrary bytes: it
// must never panic, must reject (not silently drop) corrupt frames, and
// every frame it does accept must re-encode byte-identically — so the
// decoder can never invent events a sender did not frame.
func FuzzWireFrameRoundTrip(f *testing.F) {
	valid, err := AppendBatchFrame(nil, sampleEvents())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(append(append([]byte(nil), valid...), valid...))
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	short := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(short, 2)
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<20)
		var scratch []Event
		for {
			typ, payload, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Rejection is fine; the reader must stop (a corrupt stream
				// cannot be resynchronized without a length anchor).
				return
			}
			// Accepted frame: the payload survived its CRC; it must re-frame
			// byte-identically.
			refr := AppendFrame(nil, typ, payload)
			var hdr [HeaderLen]byte
			PutFrameHeader(hdr[:], typ, payload)
			if !bytes.Equal(refr[:HeaderLen], hdr[:]) {
				t.Fatalf("AppendFrame and PutFrameHeader disagree")
			}
			if typ != FrameBatch {
				continue
			}
			evs, err := DecodeEvents(payload, scratch[:0])
			if err != nil {
				continue // reject, not a drop: caller sees the error
			}
			scratch = evs
			re, err := AppendEvents(nil, evs)
			if err != nil {
				t.Fatalf("decoded batch failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, payload) {
				t.Fatalf("batch round trip not byte-identical:\n in: %x\nout: %x", payload, re)
			}
		}
	})
}
