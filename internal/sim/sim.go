// Package sim drives the end-to-end pricing simulation of Section 5: for
// each time period it shows the issued tasks and available workers to a
// pricing strategy, reveals the requesters' accept/reject decisions against
// their private valuations, assigns workers to accepting tasks with a
// maximum-weight bipartite matching, accrues platform revenue, and tracks
// the running-time and memory metrics the paper's figures report.
package sim

import (
	"fmt"
	"runtime"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/stats"
	"spatialcrowd/internal/window"
)

// Config controls one simulation run.
type Config struct {
	Params core.Params
	// MemoryEvery samples runtime heap statistics every k periods (0
	// disables sampling; 1 samples every period). Sampling is a
	// stop-the-world operation, so large-scale runs use a coarse cadence.
	MemoryEvery int
	// Trace records a per-period time series (PeriodStats) and online price
	// quantiles in the result. Off by default: the series costs O(T) memory.
	Trace bool
	// RepositionSpeed, when positive and the strategy exposes per-grid
	// prices (core.GridPricer), moves each idle worker this many distance
	// units per period toward the highest-priced grid among its current and
	// neighboring cells — the supply response the paper's practical note (i)
	// anticipates ("higher unit price ... will motivate more drivers to move
	// to these regions"). 0 disables repositioning.
	RepositionSpeed float64
	// OnMove, when set, receives every repositioning step as a
	// market.Move — the mobility trace of the run. Replaying the instance
	// through a deterministic engine with the same trace
	// (engine.ReplayMobility) reproduces this run event for event, so
	// replay equivalence covers mobility.
	OnMove func(market.Move)
	// Amortize turns on the executor's fingerprint-gated amortized-rebuild
	// layer (window.Executor.SetAmortize). Results are bit-identical either
	// way; amortization only changes how much work repeats across periods
	// whose market content did not change.
	Amortize bool
}

// PeriodStats is one period's slice of the simulation trace.
type PeriodStats struct {
	Period    int
	Tasks     int
	Workers   int // workers available at pricing time
	Accepted  int
	Served    int
	Revenue   float64
	MeanPrice float64 // average offered unit price over the period's tasks
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{Params: core.DefaultParams(), MemoryEvery: 16}
}

// Result aggregates one run's outcome.
type Result struct {
	Strategy string
	// Revenue is the total platform revenue: sum of d_r * p_r over all
	// served tasks across all periods (Definition 5 summed over t).
	Revenue float64
	// Offered / Accepted / Served count tasks priced, tasks whose requester
	// accepted, and tasks actually assigned a worker.
	Offered  int
	Accepted int
	Served   int
	// StrategyTime is the wall time spent inside the strategy (Prices +
	// Observe) over all periods — the paper's "running time" panels, which
	// exclude the platform's own assignment step shared by all strategies.
	StrategyTime time.Duration
	// MatchingTime is the platform-side assignment matching time.
	MatchingTime time.Duration
	// PeakHeapMB is the maximum sampled heap occupancy during the run.
	PeakHeapMB float64
	// Trace is the per-period time series (only when Config.Trace is set).
	Trace []PeriodStats
	// PriceMedian and PriceP90 are online quantile estimates of the offered
	// unit prices (only when Config.Trace is set; NaN with no offers).
	PriceMedian float64
	PriceP90    float64
}

// Run simulates the instance under the given strategy. The instance must
// carry pre-assigned private valuations (see workload generators). Workers
// persist across periods until they are either consumed by an assignment or
// their availability duration lapses; tasks expire at the end of their
// period, as in the paper's batch mode.
//
// Run is a thin driver over the unified window-execution core
// (internal/window): each period's price -> accept -> assign pipeline runs
// through the same window.Executor the streaming engine's shards use, so
// the two paths cannot drift apart.
func Run(in *market.Instance, strat core.Strategy, cfg Config) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if strat == nil {
		return Result{}, fmt.Errorf("sim: nil strategy")
	}
	res := Result{Strategy: strat.Name()}

	var medianQ, p90Q *stats.PSquare
	if cfg.Trace {
		res.Trace = make([]PeriodStats, 0, in.Periods)
		medianQ, _ = stats.NewPSquare(0.5)
		p90Q, _ = stats.NewPSquare(0.9)
	}

	space := in.Spatial()
	exec := window.NewExecutor(space, window.GraphCellIndex)
	exec.SetAmortize(cfg.Amortize)
	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()

	// The active pool holds workers that have arrived, are unconsumed, and
	// whose duration has not lapsed.
	active := make([]market.Worker, 0, 1024)
	var drop []bool // reused consumed-worker marks

	var ms runtime.MemStats
	sampleMem := func(period int) {
		if cfg.MemoryEvery <= 0 || period%cfg.MemoryEvery != 0 {
			return
		}
		runtime.ReadMemStats(&ms)
		if mb := float64(ms.HeapAlloc) / (1 << 20); mb > res.PeakHeapMB {
			res.PeakHeapMB = mb
		}
	}

	for t := 0; t < in.Periods; t++ {
		// Admit new arrivals, evict expired workers.
		active = append(active, arrivals[t]...)
		live := active[:0]
		for _, w := range active {
			if w.ActiveAt(t) {
				live = append(live, w)
			}
		}
		active = live

		tasks := tasksByPeriod[t]
		if len(tasks) == 0 {
			sampleMem(t)
			continue
		}
		poolAtPricing := len(active)

		pr, err := exec.Price(strat, t, tasks, active)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
		out := exec.ResolveImmediate(strat, pr, tasks)
		res.StrategyTime += pr.PriceTime + out.ObserveTime
		res.MatchingTime += out.MatchTime
		res.Offered += len(tasks)
		res.Accepted += out.AcceptedCount
		res.Served += out.Served
		res.Revenue += out.Revenue

		// Matched workers are consumed: compact the pool preserving order.
		if len(out.ConsumedRights) > 0 {
			if cap(drop) >= len(active) {
				drop = drop[:len(active)]
				clear(drop)
			} else {
				drop = make([]bool, len(active))
			}
			for _, r := range out.ConsumedRights {
				drop[r] = true
			}
			live = active[:0]
			for wi, w := range active {
				if !drop[wi] {
					live = append(live, w)
				}
			}
			active = live
		}

		if cfg.RepositionSpeed > 0 {
			if gp, ok := strat.(core.GridPricer); ok {
				repositionWorkers(space, t, active, gp.GridPrices(), cfg.RepositionSpeed, cfg.OnMove)
			}
		}

		if cfg.Trace {
			sum := 0.0
			for _, p := range pr.Prices {
				sum += p
				medianQ.Add(p)
				p90Q.Add(p)
			}
			res.Trace = append(res.Trace, PeriodStats{
				Period:    t,
				Tasks:     len(tasks),
				Workers:   poolAtPricing,
				Accepted:  out.AcceptedCount,
				Served:    out.Served,
				Revenue:   out.Revenue,
				MeanPrice: sum / float64(len(tasks)),
			})
		}

		sampleMem(t)
	}
	if cfg.Trace {
		res.PriceMedian = medianQ.Quantile()
		res.PriceP90 = p90Q.Quantile()
	}
	return res, nil
}

// repositionWorkers drifts each idle worker toward the center of the
// best-priced cell among its own and neighboring cells, at the given speed.
// A worker already in the locally best cell keeps converging to that cell's
// center, putting it within reach of the cell's demand. Every actual
// relocation is reported through onMove (when set) as the move of the given
// period, so the run's mobility can be replayed elsewhere.
func repositionWorkers(space spatial.Space, period int, workers []market.Worker,
	gridPrices map[int]float64, speed float64, onMove func(market.Move)) {
	if len(gridPrices) == 0 {
		return
	}
	var buf []int // reused neighbor buffer: one walk per worker per period
	for i := range workers {
		w := &workers[i]
		cur := space.CellOf(w.Loc)
		bestCell, bestPrice := cur, gridPrices[cur]
		buf = space.NeighborsAppend(cur, buf[:0])
		for _, nb := range buf {
			if p, ok := gridPrices[nb]; ok && p > bestPrice {
				bestCell, bestPrice = nb, p
			}
		}
		target := space.CellCenter(bestCell)
		d := w.Loc.Dist(target)
		if d == 0 {
			continue
		}
		if d <= speed {
			w.Loc = target
		} else {
			w.Loc = w.Loc.Add(target.Add(w.Loc.Scale(-1)).Scale(speed / d))
		}
		if onMove != nil {
			onMove(market.Move{Period: period, WorkerID: w.ID, To: w.Loc})
		}
	}
}
