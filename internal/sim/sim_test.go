package sim

import (
	"math/rand"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/workload"
)

// fixedPrice prices every task at a constant; handy for deterministic
// accounting checks.
type fixedPrice struct{ p float64 }

func (f fixedPrice) Name() string { return "Fixed" }
func (f fixedPrice) Prices(ctx *core.PeriodContext) []float64 {
	out := make([]float64, len(ctx.Tasks))
	for i := range out {
		out[i] = f.p
	}
	return out
}
func (f fixedPrice) Observe(*core.PeriodContext, []float64, []bool) {}

// badStrategy returns the wrong number of prices.
type badStrategy struct{}

func (badStrategy) Name() string                                   { return "Bad" }
func (badStrategy) Prices(*core.PeriodContext) []float64           { return nil }
func (badStrategy) Observe(*core.PeriodContext, []float64, []bool) {}

func tinyInstance() *market.Instance {
	grid := geo.SquareGrid(10, 2)
	return &market.Instance{
		Grid:    grid,
		Periods: 2,
		Tasks: []market.Task{
			{ID: 0, Period: 0, Origin: geo.Point{X: 2, Y: 2}, Dest: geo.Point{X: 5, Y: 2}, Distance: 3, Valuation: 4},
			{ID: 1, Period: 0, Origin: geo.Point{X: 3, Y: 2}, Dest: geo.Point{X: 3, Y: 6}, Distance: 4, Valuation: 1.5},
			{ID: 2, Period: 1, Origin: geo.Point{X: 8, Y: 8}, Dest: geo.Point{X: 2, Y: 8}, Distance: 6, Valuation: 3},
		},
		Workers: []market.Worker{
			{ID: 0, Period: 0, Loc: geo.Point{X: 2, Y: 3}, Radius: 3, Duration: 2},
			{ID: 1, Period: 1, Loc: geo.Point{X: 7, Y: 7}, Radius: 3, Duration: 1},
		},
	}
}

func TestRunDeterministicAccounting(t *testing.T) {
	// Price 2 everywhere: task 0 accepts (v=4), task 1 rejects (v=1.5),
	// task 2 accepts (v=3).
	// Period 0: worker 0 serves task 0 -> revenue 3*2 = 6. Worker 0 consumed.
	// Period 1: worker 1 serves task 2 -> revenue 6*2 = 12.
	in := tinyInstance()
	res, err := Run(in, fixedPrice{2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 3 || res.Accepted != 2 || res.Served != 2 {
		t.Errorf("offered/accepted/served = %d/%d/%d, want 3/2/2",
			res.Offered, res.Accepted, res.Served)
	}
	if res.Revenue != 18 {
		t.Errorf("revenue = %v, want 18", res.Revenue)
	}
}

func TestRunPriceTooHighKillsRevenue(t *testing.T) {
	in := tinyInstance()
	res, err := Run(in, fixedPrice{4.5}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Revenue != 0 {
		t.Errorf("accepted=%d revenue=%v, want zero at prohibitive price",
			res.Accepted, res.Revenue)
	}
}

func TestRunWorkerConsumption(t *testing.T) {
	// Both tasks in period 0 and 1 are reachable only by worker 0 (long
	// duration); once it serves period 0, period 1 must go unserved.
	grid := geo.SquareGrid(10, 1)
	in := &market.Instance{
		Grid:    grid,
		Periods: 2,
		Tasks: []market.Task{
			{ID: 0, Period: 0, Origin: geo.Point{X: 5, Y: 5}, Distance: 2, Valuation: 5},
			{ID: 1, Period: 1, Origin: geo.Point{X: 5, Y: 5}, Distance: 2, Valuation: 5},
		},
		Workers: []market.Worker{
			{ID: 0, Period: 0, Loc: geo.Point{X: 5, Y: 5}, Radius: 3, Duration: 2},
		},
	}
	res, err := Run(in, fixedPrice{2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 {
		t.Errorf("served = %d, want 1 (worker consumed in period 0)", res.Served)
	}
	if res.Revenue != 4 {
		t.Errorf("revenue = %v, want 4", res.Revenue)
	}
}

func TestRunWorkerExpiry(t *testing.T) {
	// Worker with duration 1 arrives in period 0; the only task is in
	// period 1 — it must go unserved.
	grid := geo.SquareGrid(10, 1)
	in := &market.Instance{
		Grid:    grid,
		Periods: 2,
		Tasks: []market.Task{
			{ID: 0, Period: 1, Origin: geo.Point{X: 5, Y: 5}, Distance: 2, Valuation: 5},
		},
		Workers: []market.Worker{
			{ID: 0, Period: 0, Loc: geo.Point{X: 5, Y: 5}, Radius: 3, Duration: 1},
		},
	}
	res, err := Run(in, fixedPrice{2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 {
		t.Errorf("served = %d, want 0 (worker expired)", res.Served)
	}
}

func TestRunRangeConstraint(t *testing.T) {
	// Task beyond every worker's radius is accepted but never served.
	grid := geo.SquareGrid(100, 1)
	in := &market.Instance{
		Grid:    grid,
		Periods: 1,
		Tasks: []market.Task{
			{ID: 0, Period: 0, Origin: geo.Point{X: 90, Y: 90}, Distance: 2, Valuation: 5},
		},
		Workers: []market.Worker{
			{ID: 0, Period: 0, Loc: geo.Point{X: 5, Y: 5}, Radius: 3, Duration: 1},
		},
	}
	res, err := Run(in, fixedPrice{2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Served != 0 || res.Revenue != 0 {
		t.Errorf("accepted/served/revenue = %d/%d/%v, want 1/0/0",
			res.Accepted, res.Served, res.Revenue)
	}
}

func TestRunErrors(t *testing.T) {
	in := tinyInstance()
	if _, err := Run(in, nil, DefaultConfig()); err == nil {
		t.Error("nil strategy should error")
	}
	if _, err := Run(in, badStrategy{}, DefaultConfig()); err == nil {
		t.Error("mismatched price count should error")
	}
	bad := tinyInstance()
	bad.Tasks[0].Period = 99
	if _, err := Run(bad, fixedPrice{2}, DefaultConfig()); err == nil {
		t.Error("invalid instance should error")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := workload.SyntheticConfig{Workers: 200, Requests: 800, Periods: 50, GridSide: 5, Seed: 7}
	in1, _, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in2, _, _ := workload.Synthetic(cfg)
	r1, err := Run(in1, fixedPrice{2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Run(in2, fixedPrice{2}, DefaultConfig())
	if r1.Revenue != r2.Revenue || r1.Served != r2.Served {
		t.Errorf("same seed, different outcomes: %v vs %v", r1, r2)
	}
}

func TestRunAllStrategiesEndToEnd(t *testing.T) {
	// Smoke-test every strategy on a moderate synthetic market and verify
	// sane accounting; also check that MAPS is competitive (it should beat
	// the fixed mid price on this imbalanced workload).
	cfg := workload.SyntheticConfig{Workers: 300, Requests: 1500, Periods: 60, GridSide: 5, Seed: 11}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()

	basep, _ := core.NewBaseP(params)
	oracle := &modelOracle{model: model, rng: rand.New(rand.NewSource(1))}
	if err := basep.Calibrate(oracle, in.Grid.NumCells(), 50); err != nil {
		t.Fatal(err)
	}
	pb := basep.BasePrice()
	if pb < params.PMin || pb > params.PMax {
		t.Fatalf("base price %v out of bounds", pb)
	}

	mapsStrat, _ := core.NewMAPS(params, pb)
	sdr, _ := core.NewSDR(params, pb)
	sde, _ := core.NewSDE(params, pb)
	cucb, _ := core.NewCappedUCB(params, pb)

	results := map[string]Result{}
	for _, s := range []core.Strategy{basep, mapsStrat, sdr, sde, cucb} {
		res, err := Run(in, s, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Revenue < 0 || res.Served > res.Accepted || res.Accepted > res.Offered {
			t.Fatalf("%s: inconsistent accounting %+v", s.Name(), res)
		}
		if res.Offered != len(in.Tasks) {
			t.Fatalf("%s: offered %d, want %d", s.Name(), res.Offered, len(in.Tasks))
		}
		results[s.Name()] = res
	}
	if results["MAPS"].Revenue <= 0 {
		t.Error("MAPS earned nothing")
	}
}

// modelOracle adapts a valuation model into a calibration ProbeOracle.
type modelOracle struct {
	model market.ValuationModel
	rng   *rand.Rand
}

func (o *modelOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

func TestMemorySampling(t *testing.T) {
	in := tinyInstance()
	cfg := DefaultConfig()
	cfg.MemoryEvery = 1
	res, err := Run(in, fixedPrice{2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakHeapMB <= 0 {
		t.Error("memory sampling produced no measurement")
	}
	cfg.MemoryEvery = 0
	res, _ = Run(in, fixedPrice{2}, cfg)
	if res.PeakHeapMB != 0 {
		t.Error("disabled sampling should record nothing")
	}
}

func TestRunTrace(t *testing.T) {
	in := tinyInstance()
	cfg := DefaultConfig()
	cfg.Trace = true
	res, err := Run(in, fixedPrice{2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace has %d periods, want 2", len(res.Trace))
	}
	p0 := res.Trace[0]
	if p0.Tasks != 2 || p0.Accepted != 1 || p0.Served != 1 || p0.Revenue != 6 {
		t.Errorf("period 0 stats %+v", p0)
	}
	if p0.MeanPrice != 2 {
		t.Errorf("mean price %v, want 2", p0.MeanPrice)
	}
	if res.Trace[1].Revenue != 12 {
		t.Errorf("period 1 revenue %v, want 12", res.Trace[1].Revenue)
	}
	// Fixed price: both quantiles equal the price.
	if res.PriceMedian != 2 || res.PriceP90 != 2 {
		t.Errorf("price quantiles %v/%v, want 2/2", res.PriceMedian, res.PriceP90)
	}
	// Trace revenue sums to the total.
	sum := 0.0
	for _, p := range res.Trace {
		sum += p.Revenue
	}
	if sum != res.Revenue {
		t.Errorf("trace revenue %v != total %v", sum, res.Revenue)
	}
	// Without Trace: no series.
	res, _ = Run(in, fixedPrice{2}, DefaultConfig())
	if res.Trace != nil || res.PriceMedian != 0 {
		t.Error("trace should be absent when disabled")
	}
}

// surgePricer prices one hot cell high and exposes grid prices.
type surgePricer struct {
	hot  int
	grid map[int]float64
}

func (s *surgePricer) Name() string { return "Surge" }
func (s *surgePricer) Prices(ctx *core.PeriodContext) []float64 {
	s.grid = map[int]float64{}
	out := make([]float64, len(ctx.Tasks))
	for i, tv := range ctx.Tasks {
		p := 1.5
		if tv.Cell == s.hot {
			p = 4.5
		}
		out[i] = p
		s.grid[tv.Cell] = p
	}
	return out
}
func (s *surgePricer) Observe(*core.PeriodContext, []float64, []bool) {}
func (s *surgePricer) GridPrices() map[int]float64                    { return s.grid }

func TestRepositioningDriftsTowardSurge(t *testing.T) {
	// A 2x1 world: tasks appear in both cells every period; cell 1 is
	// surge-priced. An idle worker parked in cell 0 should drift toward
	// cell 1's center when repositioning is on, and stay put when off.
	grid := geo.SquareGrid(20, 2) // 4 cells: 0,1 bottom; 2,3 top
	hot := 1
	mkInstance := func() *market.Instance {
		in := &market.Instance{Grid: grid, Periods: 10}
		id := 0
		for tt := 0; tt < 10; tt++ {
			// One unreachable task per cell keeps prices flowing; valuations 0
			// so nothing is ever accepted and the worker stays idle.
			for _, cell := range []int{0, 1} {
				c := grid.CellCenter(cell)
				in.Tasks = append(in.Tasks, market.Task{
					ID: id, Period: tt, Origin: c, Distance: 1, Valuation: 0,
				})
				id++
			}
		}
		in.Workers = []market.Worker{
			{ID: 0, Period: 0, Loc: geo.Point{X: 2, Y: 5}, Radius: 0.5, Duration: 10},
		}
		return in
	}

	cfg := DefaultConfig()
	cfg.RepositionSpeed = 1.0
	in := mkInstance()
	if _, err := Run(in, &surgePricer{hot: hot}, cfg); err != nil {
		t.Fatal(err)
	}
	moved := in.Workers[0].Loc // Run mutates its own copy? workers are copied into buckets
	_ = moved
	// Run copies workers into period buckets, so inspect via a probe: rerun
	// manually with repositionWorkers to validate the drift math instead.
	workers := []market.Worker{{ID: 0, Loc: geo.Point{X: 2, Y: 5}, Radius: 0.5, Duration: 10}}
	gridPrices := map[int]float64{0: 1.5, 1: 4.5}
	for i := 0; i < 16; i++ {
		repositionWorkers(in.Spatial(), 0, workers, gridPrices, 1.0, nil)
	}
	target := grid.CellCenter(hot)
	if workers[0].Loc.Dist(target) > 1e-9 {
		t.Errorf("worker at %v, want drifted to %v", workers[0].Loc, target)
	}
	// Zero speed: no movement.
	workers = []market.Worker{{ID: 0, Loc: geo.Point{X: 2, Y: 5}}}
	repositionWorkers(in.Spatial(), 0, workers, gridPrices, 0, nil) // speed<=0 guarded by caller; direct call moves 0
	_ = workers
}

func TestRepositioningChangesOutcome(t *testing.T) {
	// End to end: a worker that cannot reach the hot cell's tasks without
	// drifting serves them once repositioning is enabled.
	grid := geo.SquareGrid(20, 2)
	build := func() *market.Instance {
		in := &market.Instance{Grid: grid, Periods: 12}
		for tt := 0; tt < 12; tt++ {
			in.Tasks = append(in.Tasks,
				market.Task{ID: tt * 2, Period: tt, Origin: grid.CellCenter(1), Distance: 2, Valuation: 5},
				market.Task{ID: tt*2 + 1, Period: tt, Origin: geo.Point{X: 1, Y: 1}, Distance: 2, Valuation: 0},
			)
		}
		in.Workers = []market.Worker{
			{ID: 0, Period: 0, Loc: geo.Point{X: 2, Y: 5}, Radius: 3, Duration: 12},
		}
		return in
	}
	cfg := DefaultConfig()
	off, err := Run(build(), &surgePricer{hot: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RepositionSpeed = 2
	on, err := Run(build(), &surgePricer{hot: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Served != 0 {
		t.Fatalf("without drift the worker should never reach the hot cell (served %d)", off.Served)
	}
	if on.Served == 0 {
		t.Fatal("with drift the worker should eventually serve the hot cell")
	}
	if on.Revenue <= off.Revenue {
		t.Errorf("repositioning should raise revenue: %v vs %v", on.Revenue, off.Revenue)
	}
}

// TestRunOverRoadSpace is the offline counterpart of the engine's road
// replay: sim.Run over an instance whose spatial backend is a road network
// must complete end to end with revenue flowing, including the repositioning
// extension walking the road clusters' adjacency.
func TestRunOverRoadSpace(t *testing.T) {
	in, _, _, err := workload.BeijingRoad(workload.RoadConfig{
		Variant: workload.BeijingNight, WorkerDuration: 6, Scale: 150, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := core.NewSDR(core.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RepositionSpeed = 0.5 // exercise Neighbors/CellCenter on the road backend
	res, err := Run(in, &repositioningSDR{SDR: strat}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Revenue <= 0 {
		t.Fatalf("road-space run produced nothing: %+v", res)
	}
	if res.Served > res.Accepted || res.Accepted > res.Offered {
		t.Fatalf("funnel violated: %+v", res)
	}
}

// repositioningSDR exposes per-cell prices so sim.Run's repositioning path
// (core.GridPricer) activates on top of the plain SDR heuristic.
type repositioningSDR struct {
	*core.SDR
	last map[int]float64
}

func (s *repositioningSDR) Prices(ctx *core.PeriodContext) []float64 {
	out := s.SDR.Prices(ctx)
	s.last = make(map[int]float64, len(ctx.Cells))
	for cell, tasks := range ctx.Cells {
		if len(tasks) > 0 {
			s.last[cell] = out[tasks[0]]
		}
	}
	return out
}

func (s *repositioningSDR) GridPrices() map[int]float64 { return s.last }
