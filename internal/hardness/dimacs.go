package hardness

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a 3-CNF formula in (a tolerant subset of) the DIMACS CNF
// format: comment lines start with 'c', an optional problem line
// "p cnf <vars> <clauses>", then whitespace-separated literals with each
// clause terminated by 0. Clauses with fewer than three literals are padded
// by repeating the last literal (logically equivalent); clauses with more
// than three literals are rejected, since the Theorem 1 reduction is stated
// for 3-SAT.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var (
		f                     Formula
		current               []Literal
		declVars, declClauses = -1, -1
	)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("hardness: line %d: malformed problem line %q", line, text)
			}
			var err1, err2 error
			declVars, err1 = strconv.Atoi(fields[2])
			declClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || declVars <= 0 || declClauses <= 0 {
				return nil, fmt.Errorf("hardness: line %d: bad problem counts %q", line, text)
			}
			continue
		}
		for _, tok := range strings.Fields(text) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("hardness: line %d: bad literal %q", line, tok)
			}
			if v == 0 {
				cl, err := padClause(current, line)
				if err != nil {
					return nil, err
				}
				f.Clauses = append(f.Clauses, cl)
				current = current[:0]
				continue
			}
			current = append(current, Literal(v))
			if lv := Literal(v).Var(); lv > f.NumVars {
				f.NumVars = lv
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hardness: reading DIMACS: %w", err)
	}
	if len(current) > 0 {
		cl, err := padClause(current, line)
		if err != nil {
			return nil, err
		}
		f.Clauses = append(f.Clauses, cl)
	}
	if declVars > f.NumVars {
		f.NumVars = declVars
	}
	if declClauses >= 0 && declClauses != len(f.Clauses) {
		return nil, fmt.Errorf("hardness: problem line declares %d clauses, found %d",
			declClauses, len(f.Clauses))
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// padClause normalizes a parsed clause to exactly three literals.
func padClause(lits []Literal, line int) (Clause, error) {
	switch len(lits) {
	case 0:
		return Clause{}, fmt.Errorf("hardness: line %d: empty clause (unsatisfiable by convention, not supported)", line)
	case 1:
		return Clause{lits[0], lits[0], lits[0]}, nil
	case 2:
		return Clause{lits[0], lits[1], lits[1]}, nil
	case 3:
		return Clause{lits[0], lits[1], lits[2]}, nil
	default:
		return Clause{}, fmt.Errorf("hardness: line %d: clause with %d literals; the Theorem 1 reduction is for 3-SAT", line, len(lits))
	}
}

// WriteDIMACS emits the formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		if _, err := fmt.Fprintf(w, "%d %d %d 0\n", c[0], c[1], c[2]); err != nil {
			return err
		}
	}
	return nil
}
