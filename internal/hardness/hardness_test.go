package hardness

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLiteral(t *testing.T) {
	if Literal(3).Var() != 3 || !Literal(3).Positive() {
		t.Error("positive literal wrong")
	}
	if Literal(-5).Var() != 5 || Literal(-5).Positive() {
		t.Error("negative literal wrong")
	}
}

func TestFormulaValidate(t *testing.T) {
	good := &Formula{NumVars: 2, Clauses: []Clause{{1, -2, 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Formula{
		{NumVars: 0, Clauses: []Clause{{1, 1, 1}}},
		{NumVars: 2},
		{NumVars: 2, Clauses: []Clause{{1, 0, 2}}},
		{NumVars: 2, Clauses: []Clause{{1, 3, 2}}},
	}
	for i, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSatisfiableKnownFormulas(t *testing.T) {
	tests := []struct {
		name string
		f    *Formula
		want bool
	}{
		{
			"trivially satisfiable",
			&Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}}},
			true,
		},
		{
			"forced contradiction",
			// (x1 v x1 v x1) ∧ (~x1 v ~x1 v ~x1)
			&Formula{NumVars: 1, Clauses: []Clause{{1, 1, 1}, {-1, -1, -1}}},
			false,
		},
		{
			"classic pigeonhole-ish unsat",
			// All eight sign patterns over three variables: unsatisfiable.
			&Formula{NumVars: 3, Clauses: []Clause{
				{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
				{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
			}},
			false,
		},
		{
			"implication chain",
			// (~x1 v x2 v x2) ∧ (~x2 v x3 v x3) ∧ (x1 v x1 v x1) ∧ (x3 v x3 v x3)
			&Formula{NumVars: 3, Clauses: []Clause{
				{-1, 2, 2}, {-2, 3, 3}, {1, 1, 1}, {3, 3, 3},
			}},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, assign := tt.f.Satisfiable()
			if got != tt.want {
				t.Fatalf("Satisfiable = %v, want %v", got, tt.want)
			}
			if got && !tt.f.evaluate(assign) {
				t.Error("returned assignment does not satisfy the formula")
			}
		})
	}
}

func TestReduceStructure(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, -2, 2}}}
	in, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumGrids != 2 || in.NumWorkers != 1 || len(in.Valuation) != 3 {
		t.Fatalf("reduced shape wrong: %+v", in)
	}
	// Positive literal: valuation 1 distance 1; negative: valuation 2
	// distance 0.5.
	if in.Valuation[0] != 1 || in.Distance[0] != 1 {
		t.Error("positive literal encoding wrong")
	}
	if in.Valuation[1] != 2 || in.Distance[1] != 0.5 {
		t.Error("negative literal encoding wrong")
	}
	if in.Grid[0] != 0 || in.Grid[1] != 1 || in.Grid[2] != 1 {
		t.Errorf("grid mapping %v", in.Grid)
	}
}

func TestTheorem1EquivalenceKnownCases(t *testing.T) {
	formulas := []*Formula{
		{NumVars: 3, Clauses: []Clause{{1, 2, 3}}},
		{NumVars: 1, Clauses: []Clause{{1, 1, 1}, {-1, -1, -1}}},
		{NumVars: 3, Clauses: []Clause{
			{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
			{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
		}},
		{NumVars: 3, Clauses: []Clause{{-1, 2, 2}, {-2, 3, 3}, {1, 1, 1}, {3, 3, 3}}},
		{NumVars: 2, Clauses: []Clause{{1, -2, 1}, {-1, 2, -1}}},
	}
	for i, f := range formulas {
		if err := VerifyReduction(f); err != nil {
			t.Errorf("formula %d: %v", i, err)
		}
	}
}

func TestTheorem1EquivalenceRandomFormulas(t *testing.T) {
	// Property check of the reduction over random small 3-CNF formulas,
	// spanning both satisfiable and unsatisfiable instances (clause/variable
	// ratio around the ~4.26 phase transition).
	rng := rand.New(rand.NewSource(99))
	satCount, unsatCount := 0, 0
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(5)
		nc := 1 + rng.Intn(5*nv)
		f := &Formula{NumVars: nv}
		for c := 0; c < nc; c++ {
			var cl Clause
			for k := 0; k < 3; k++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[k] = Literal(v)
			}
			f.Clauses = append(f.Clauses, cl)
		}
		if sat, _ := f.Satisfiable(); sat {
			satCount++
		} else {
			unsatCount++
		}
		if err := VerifyReduction(f); err != nil {
			t.Fatalf("trial %d: %v (formula %+v)", trial, err, f)
		}
	}
	if satCount == 0 || unsatCount == 0 {
		t.Errorf("random suite covered only one side: %d sat, %d unsat", satCount, unsatCount)
	}
}

func TestMaxRevenuePricesDecodeAssignment(t *testing.T) {
	// For a satisfiable formula, the optimal prices decode a satisfying
	// assignment: price 1 on a grid ⇔ variable true.
	f := &Formula{NumVars: 3, Clauses: []Clause{{-1, 2, 2}, {-2, 3, 3}, {1, 1, 1}, {3, 3, 3}}}
	in, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	rev, prices := in.MaxRevenue()
	if rev != float64(len(f.Clauses)) {
		t.Fatalf("revenue %v, want %d", rev, len(f.Clauses))
	}
	assign := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		assign[v] = prices[v-1] == 1
	}
	if !f.evaluate(assign) {
		t.Errorf("decoded assignment %v does not satisfy the formula", assign[1:])
	}
}

func TestBruteForceGuards(t *testing.T) {
	big := &Formula{NumVars: 30, Clauses: []Clause{{1, 2, 3}}}
	defer func() {
		if recover() == nil {
			t.Error("oversized SAT brute force should panic")
		}
	}()
	big.Satisfiable()
}

func TestParseDIMACS(t *testing.T) {
	input := `c a comment
p cnf 3 2
1 -2 3 0
-1 2 0
`
	f, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0] != (Clause{1, -2, 3}) {
		t.Errorf("clause 0 = %v", f.Clauses[0])
	}
	// 2-literal clause padded by repeating the last literal.
	if f.Clauses[1] != (Clause{-1, 2, 2}) {
		t.Errorf("clause 1 = %v", f.Clauses[1])
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"bad problem line": "p cnf x 2\n1 2 3 0\n",
		"bad literal":      "1 two 3 0\n",
		"empty clause":     "0\n",
		"4-literal clause": "1 2 3 4 0\n",
		"clause count lie": "p cnf 3 5\n1 2 3 0\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
				t.Error("want parse error")
			}
		})
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := &Formula{NumVars: 4, Clauses: []Clause{{1, -2, 3}, {-4, 2, 1}}}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip shape: %d/%d", g.NumVars, len(g.Clauses))
	}
	for i := range f.Clauses {
		if f.Clauses[i] != g.Clauses[i] {
			t.Errorf("clause %d: %v vs %v", i, f.Clauses[i], g.Clauses[i])
		}
	}
}

func TestParseDIMACSTrailingClauseWithoutZero(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader("1 2 3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
}
