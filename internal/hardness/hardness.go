// Package hardness makes the paper's NP-hardness proof (Theorem 1,
// Appendix A) executable: it implements the polynomial-time reduction from
// 3-SAT to the decision version of the Global Dynamic Pricing problem and a
// tiny exact solver, so the equivalence "formula satisfiable ⇔ optimal
// revenue = m" can be verified mechanically on small formulas.
//
// The reduction, following the appendix: for each clause C_i there is one
// worker w_i; for each literal of C_i there is one requester whose task only
// w_i can serve. A positive literal's requester has deterministic valuation
// 1 and distance 1; a negative literal's has valuation 2 and distance 0.5.
// All requesters of the same variable (its positive and negative literals
// across all clauses) share one grid, so the platform must offer them one
// common price: price 1 ⇒ the variable is true (positive literals accept and
// pay 1x1; negative literals accept too but yield 0.5 — suboptimal), price 2
// ⇒ the variable is false (only negative literals accept, paying 2x0.5 = 1).
// Each worker can earn exactly 1 iff its clause has a satisfied literal, so
// the maximum revenue is m iff the formula is satisfiable.
package hardness

import (
	"fmt"
)

// Literal is a 3-SAT literal: a 1-based variable index, negative for a
// negated variable (DIMACS convention; 0 is invalid).
type Literal int

// Var returns the 1-based variable index.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is un-negated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3-CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate rejects malformed formulas.
func (f *Formula) Validate() error {
	if f.NumVars <= 0 {
		return fmt.Errorf("hardness: formula needs at least one variable")
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("hardness: formula needs at least one clause")
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("hardness: clause %d has a zero literal", ci)
			}
			if l.Var() > f.NumVars {
				return fmt.Errorf("hardness: clause %d references variable %d > %d",
					ci, l.Var(), f.NumVars)
			}
		}
	}
	return nil
}

// Satisfiable decides the formula by exhaustive assignment enumeration —
// exponential, for reduction verification on small formulas only.
// It returns a satisfying assignment (1-based; index 0 unused) when one
// exists.
func (f *Formula) Satisfiable() (bool, []bool) {
	if f.NumVars > 24 {
		panic("hardness: brute-force SAT beyond 24 variables")
	}
	assign := make([]bool, f.NumVars+1)
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 1; v <= f.NumVars; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.evaluate(assign) {
			out := make([]bool, len(assign))
			copy(out, assign)
			return true, out
		}
	}
	return false, nil
}

// evaluate checks the formula under an assignment.
func (f *Formula) evaluate(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// GDPInstance is the pricing instance the reduction produces. Requesters
// have deterministic valuations (the acceptance "distribution" is a point
// mass), so revenue has no expectation and the decision question is exact.
type GDPInstance struct {
	// NumGrids is one grid per variable; requester r belongs to grid
	// Grid[r].
	NumGrids int
	// Requesters, one per literal occurrence, in clause-major order.
	Valuation []float64 // 1 for positive literals, 2 for negative
	Distance  []float64 // 1 for positive literals, 0.5 for negative
	Grid      []int     // variable (0-based) of the literal
	// Worker w can serve requester r iff CanServe[r] == w; exactly the
	// clause's worker. One worker per clause.
	NumWorkers int
	WorkerOf   []int // clause (= worker) index of each requester
}

// Reduce maps a 3-SAT formula to a GDP instance in polynomial time.
func Reduce(f *Formula) (*GDPInstance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	in := &GDPInstance{
		NumGrids:   f.NumVars,
		NumWorkers: len(f.Clauses),
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.Positive() {
				in.Valuation = append(in.Valuation, 1)
				in.Distance = append(in.Distance, 1)
			} else {
				in.Valuation = append(in.Valuation, 2)
				in.Distance = append(in.Distance, 0.5)
			}
			in.Grid = append(in.Grid, l.Var()-1)
			in.WorkerOf = append(in.WorkerOf, ci)
		}
	}
	return in, nil
}

// MaxRevenue computes the optimal total revenue of the reduced instance by
// enumerating all per-grid price assignments from {1, 2} and, for each,
// computing the realized revenue: every worker serves the best accepting
// requester among its clause's literals. Exponential in NumGrids; reduction
// verification only.
func (in *GDPInstance) MaxRevenue() (float64, []float64) {
	if in.NumGrids > 24 {
		panic("hardness: price enumeration beyond 24 grids")
	}
	bestRev := -1.0
	var bestPrices []float64
	prices := make([]float64, in.NumGrids)
	for mask := 0; mask < 1<<uint(in.NumGrids); mask++ {
		for g := range prices {
			if mask&(1<<uint(g)) != 0 {
				prices[g] = 2
			} else {
				prices[g] = 1
			}
		}
		rev := in.revenue(prices)
		if rev > bestRev {
			bestRev = rev
			bestPrices = append([]float64(nil), prices...)
		}
	}
	return bestRev, bestPrices
}

// revenue computes total revenue under per-grid prices: each worker serves
// its highest-paying accepting requester (requesters accept iff
// price <= valuation).
func (in *GDPInstance) revenue(prices []float64) float64 {
	bestPerWorker := make([]float64, in.NumWorkers)
	for r := range in.Valuation {
		p := prices[in.Grid[r]]
		if p > in.Valuation[r] {
			continue // rejected
		}
		if rev := p * in.Distance[r]; rev > bestPerWorker[in.WorkerOf[r]] {
			bestPerWorker[in.WorkerOf[r]] = rev
		}
	}
	total := 0.0
	for _, v := range bestPerWorker {
		total += v
	}
	return total
}

// VerifyReduction checks the Theorem 1 equivalence on one formula:
// satisfiable ⇔ max revenue == number of clauses. It returns an error
// describing any violation.
func VerifyReduction(f *Formula) error {
	in, err := Reduce(f)
	if err != nil {
		return err
	}
	sat, _ := f.Satisfiable()
	rev, _ := in.MaxRevenue()
	m := float64(len(f.Clauses))
	const eps = 1e-9
	if sat && rev < m-eps {
		return fmt.Errorf("hardness: satisfiable formula but max revenue %v < m = %v", rev, m)
	}
	if !sat && rev >= m-eps {
		return fmt.Errorf("hardness: unsatisfiable formula but max revenue %v >= m = %v", rev, m)
	}
	if rev > m+eps {
		return fmt.Errorf("hardness: revenue %v exceeds the m = %v ceiling", rev, m)
	}
	return nil
}
