package exp

import (
	"fmt"

	"spatialcrowd/internal/workload"
)

// VaryWorkers is E1 (Fig. 6 a/e/i): |W| in {1250, 2500, 5000, 7500, 10000}.
func (r *Runner) VaryWorkers() (*Series, error) {
	vals := []int{1250, 2500, 5000, 7500, 10000}
	return r.sweepSynthetic("E1", "Fig 6(a,e,i): varying |W|", "|W|",
		intLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.Workers = r.scaled(vals[i])
		})
}

// VaryRequests is E2 (Fig. 6 b/f/j): |R| in {5000 .. 40000}.
func (r *Runner) VaryRequests() (*Series, error) {
	vals := []int{5000, 10000, 20000, 30000, 40000}
	return r.sweepSynthetic("E2", "Fig 6(b,f,j): varying |R|", "|R|",
		intLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.Requests = r.scaled(vals[i])
		})
}

// VaryTemporalMean is E3 (Fig. 6 c/g/k): temporal mu in {0.1 .. 0.9}.
func (r *Runner) VaryTemporalMean() (*Series, error) {
	vals := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	return r.sweepSynthetic("E3", "Fig 6(c,g,k): varying temporal mu", "mu",
		floatLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.TemporalMu = vals[i]
		})
}

// VarySpatialMean is E4 (Fig. 6 d/h/l): spatial mean in {0.1 .. 0.9}.
func (r *Runner) VarySpatialMean() (*Series, error) {
	vals := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	return r.sweepSynthetic("E4", "Fig 6(d,h,l): varying spatial mean", "mean",
		floatLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.SpatialMean = vals[i]
		})
}

// VaryDemandMean is E5 (Fig. 7 a/e/i): demand mu in {1.0 .. 3.0}.
func (r *Runner) VaryDemandMean() (*Series, error) {
	vals := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	return r.sweepSynthetic("E5", "Fig 7(a,e,i): varying demand mu", "mu",
		floatLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.DemandMu = vals[i]
		})
}

// VaryDemandSigma is E6 (Fig. 7 b/f/j): demand sigma in {0.5 .. 2.5}.
func (r *Runner) VaryDemandSigma() (*Series, error) {
	vals := []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	return r.sweepSynthetic("E6", "Fig 7(b,f,j): varying demand sigma", "sigma",
		floatLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.DemandSigma = vals[i]
		})
}

// VaryPeriods is E7 (Fig. 7 c/g/k): T in {200 .. 1000}.
func (r *Runner) VaryPeriods() (*Series, error) {
	vals := []int{200, 400, 600, 800, 1000}
	return r.sweepSynthetic("E7", "Fig 7(c,g,k): varying T", "T",
		intLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.Periods = vals[i]
		})
}

// VaryGrids is E8 (Fig. 7 d/h/l): G in {25, 100, 225, 400, 625}.
func (r *Runner) VaryGrids() (*Series, error) {
	sides := []int{5, 10, 15, 20, 25}
	labels := make([]string, len(sides))
	for i, s := range sides {
		labels[i] = fmt.Sprintf("%d", s*s)
	}
	return r.sweepSynthetic("E8", "Fig 7(d,h,l): varying G", "G",
		labels, func(i int, cfg *workload.SyntheticConfig) {
			cfg.GridSide = sides[i]
		})
}

// VaryRadius is E9 (Fig. 8 a/e/i): a_w in {5 .. 25}.
func (r *Runner) VaryRadius() (*Series, error) {
	vals := []float64{5, 10, 15, 20, 25}
	return r.sweepSynthetic("E9", "Fig 8(a,e,i): varying radius a_w", "a_w",
		floatLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.Radius = vals[i]
		})
}

// Scalability is E10 (Fig. 8 b/f/j): |W| = |R| in {100k .. 500k}.
func (r *Runner) Scalability() (*Series, error) {
	vals := []int{100000, 200000, 300000, 400000, 500000}
	return r.sweepSynthetic("E10", "Fig 8(b,f,j): scalability |W|=|R|", "|W|(|R|)",
		intLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.Workers = r.scaled(vals[i])
			cfg.Requests = r.scaled(vals[i])
		})
}

// VaryExpRate is E13 (Fig. 10): exponential demand rate alpha.
func (r *Runner) VaryExpRate() (*Series, error) {
	vals := []float64{0.5, 0.75, 1.0, 1.25, 1.5}
	return r.sweepSynthetic("E13", "Fig 10: varying exponential alpha", "alpha",
		floatLabels(vals), func(i int, cfg *workload.SyntheticConfig) {
			cfg.Demand = workload.DemandExponential
			cfg.ExpRate = vals[i]
		})
}

// beijingSweep implements E11/E12 (Fig. 8 c/g/k and d/h/l): the Beijing-like
// datasets swept over worker duration delta_w.
func (r *Runner) beijingSweep(id, title string, variant workload.BeijingVariant) (*Series, error) {
	durations := []int{5, 10, 15, 20, 25}
	s := &Series{ID: id, Title: title, Param: "delta_w"}
	for _, d := range durations {
		cfg := workload.BeijingConfig{
			Variant:        variant,
			WorkerDuration: d,
			Scale:          r.Scale,
			Seed:           r.Seed,
		}
		in, model, err := workload.BeijingLike(cfg)
		if err != nil {
			return nil, err
		}
		results, err := r.runInstance(in, model)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{Label: fmt.Sprintf("%d", d), Results: results})
	}
	return s, nil
}

// BeijingRush is E11: dataset #1, 5pm–7pm.
func (r *Runner) BeijingRush() (*Series, error) {
	return r.beijingSweep("E11", "Fig 8(c,g,k): Beijing-like #1 (5pm-7pm)", workload.BeijingRush)
}

// BeijingNight is E12: dataset #2, 0am–2am.
func (r *Runner) BeijingNight() (*Series, error) {
	return r.beijingSweep("E12", "Fig 8(d,h,l): Beijing-like #2 (0am-2am)", workload.BeijingNight)
}

// All runs every figure experiment in DESIGN.md order.
func (r *Runner) All() ([]*Series, error) {
	drivers := []func() (*Series, error){
		r.VaryWorkers, r.VaryRequests, r.VaryTemporalMean, r.VarySpatialMean,
		r.VaryDemandMean, r.VaryDemandSigma, r.VaryPeriods, r.VaryGrids,
		r.VaryRadius, r.Scalability, r.BeijingRush, r.BeijingNight,
		r.VaryExpRate,
	}
	out := make([]*Series, 0, len(drivers))
	for _, d := range drivers {
		s, err := d()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func intLabels(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%d", v)
	}
	return out
}

func floatLabels(vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out
}
