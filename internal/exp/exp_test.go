package exp

import (
	"strings"
	"testing"

	"spatialcrowd/internal/workload"
)

// quickRunner keeps test sweeps fast: populations divided by 40 and cheap
// calibration.
func quickRunner() *Runner {
	r := NewRunner()
	r.Scale = 40
	r.ProbeBudget = 60
	return r
}

func TestSweepProducesAllStrategies(t *testing.T) {
	r := quickRunner()
	s, err := r.sweepSynthetic("T", "test sweep", "x", []string{"a", "b"},
		func(i int, cfg *workload.SyntheticConfig) {
			cfg.Periods = 40
			cfg.GridSide = 5
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(s.Points))
	}
	for _, p := range s.Points {
		for _, name := range StrategyOrder {
			res, ok := p.Results[name]
			if !ok {
				t.Fatalf("missing strategy %s", name)
			}
			if res.Offered == 0 {
				t.Errorf("%s offered nothing", name)
			}
		}
	}
}

func TestMAPSWinsOnDefaultWorkload(t *testing.T) {
	// The paper's headline: MAPS yields the highest revenue. UCB learning
	// needs a sane number of observations per (cell, price) pair, so this
	// test scales populations down less aggressively than the smoke tests
	// and coarsens the grid to keep per-cell demand near the paper's density
	// (~200 tasks per cell). Allow a 2% slack against the best baseline for
	// small-sample noise.
	r := NewRunner()
	r.Scale = 10
	cfg := workload.SyntheticConfig{
		Workers:  r.scaled(5000),
		Requests: r.scaled(20000),
		Periods:  100,
		GridSide: 4,
		Seed:     r.Seed,
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.runInstance(in, model)
	if err != nil {
		t.Fatal(err)
	}
	maps := results["MAPS"].Revenue
	for _, name := range []string{"SDR", "SDE", "CappedUCB"} {
		if maps < results[name].Revenue*0.98 {
			t.Errorf("MAPS (%.4g) lost to %s (%.4g)", maps, name, results[name].Revenue)
		}
	}
	if maps <= 0 {
		t.Fatal("MAPS earned nothing")
	}
}

func TestSeriesWriters(t *testing.T) {
	r := quickRunner()
	s, err := r.sweepSynthetic("E1", "Fig test", "|W|", []string{"10"},
		func(i int, cfg *workload.SyntheticConfig) {
			cfg.Periods = 30
			cfg.GridSide = 4
		})
	if err != nil {
		t.Fatal(err)
	}
	var tab strings.Builder
	s.WriteAll(&tab)
	out := tab.String()
	for _, want := range []string{"Revenue", "Time(secs)", "Memory(MB)", "MAPS", "CappedUCB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
	var csv strings.Builder
	s.WriteCSV(&csv, true)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(StrategyOrder) {
		t.Errorf("csv rows = %d, want %d", len(lines), 1+len(StrategyOrder))
	}
	if !strings.HasPrefix(lines[0], "experiment,param,tick,") {
		t.Errorf("csv header wrong: %s", lines[0])
	}
}

func TestBeijingSweepQuick(t *testing.T) {
	r := NewRunner()
	r.Scale = 200
	r.ProbeBudget = 40
	s, err := r.beijingSweep("E11", "beijing quick", workload.BeijingRush)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("points = %d, want 5 durations", len(s.Points))
	}
	// Longer worker durations cannot hurt revenue much: compare the shortest
	// and longest duration for MAPS (supply strictly grows).
	first := s.Points[0].Results["MAPS"].Revenue
	last := s.Points[4].Results["MAPS"].Revenue
	if last < first*0.8 {
		t.Errorf("revenue dropped sharply with more supply: %v -> %v", first, last)
	}
}

func TestAblationOracleDemand(t *testing.T) {
	r := quickRunner()
	rows, err := r.AblationOracleDemand()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	learned, oracle := rows[0].Revenue, rows[1].Revenue
	if learned <= 0 || oracle <= 0 {
		t.Fatal("ablation produced zero revenue")
	}
	// The oracle variant shouldn't be much worse than the learned one; it
	// knows strictly more. Allow noise.
	if oracle < learned*0.85 {
		t.Errorf("oracle demand (%v) far below learned (%v)", oracle, learned)
	}
}

func TestAblationNoMatching(t *testing.T) {
	r := quickRunner()
	rows, err := r.AblationNoMatching()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Revenue <= 0 {
		t.Fatal("with-matching variant earned nothing")
	}
}

func TestAblationOptimalityGap(t *testing.T) {
	r := quickRunner()
	gaps, err := r.AblationOptimalityGap(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 8 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	for _, g := range gaps {
		if g.OptValue <= 0 {
			t.Fatalf("instance %d: zero optimum", g.Instance)
		}
		if g.Ratio > 1+1e-9 {
			t.Fatalf("instance %d: MAPS above the exhaustive optimum (%v)", g.Instance, g.Ratio)
		}
		// Theorem 8 promises (1-1/e) ~ 0.632 on the L approximation; on the
		// exact objective small instances should do at least that well minus
		// approximation noise.
		if g.Ratio < 0.55 {
			t.Errorf("instance %d: ratio %v below the guarantee band", g.Instance, g.Ratio)
		}
	}
}

func TestAblationLadderAlpha(t *testing.T) {
	r := quickRunner()
	pts, err := r.AblationLadderAlpha()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Achieved < p.Bound-0.05 {
			t.Errorf("alpha %v: achieved %v below Theorem 3 bound %v", p.Alpha, p.Achieved, p.Bound)
		}
		if p.Achieved > 1+1e-9 {
			t.Errorf("alpha %v: achieved %v above 1", p.Alpha, p.Achieved)
		}
	}
}

func TestAblationSmoothing(t *testing.T) {
	r := quickRunner()
	rows, err := r.AblationSmoothing()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Revenue <= 0 {
			t.Errorf("%s earned nothing", row.Variant)
		}
	}
}

func TestAblationParametricDemand(t *testing.T) {
	r := quickRunner()
	rows, err := r.AblationParametricDemand()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Revenue <= 0 {
			t.Errorf("%s earned nothing", row.Variant)
		}
	}
}

func TestAblationRepositioning(t *testing.T) {
	r := quickRunner()
	rows, err := r.AblationRepositioning()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Revenue <= 0 {
			t.Errorf("%s earned nothing", row.Variant)
		}
	}
}
