package exp

import (
	"fmt"
	"io"
	"strings"
)

// Metric selects which panel row of a figure to print.
type Metric int

const (
	// MetricRevenue is the total platform revenue.
	MetricRevenue Metric = iota
	// MetricTime is the strategy running time in seconds.
	MetricTime
	// MetricMemory is the peak sampled heap in MB.
	MetricMemory
)

// name returns the metric's display name.
func (m Metric) name() string {
	switch m {
	case MetricTime:
		return "Time(secs)"
	case MetricMemory:
		return "Memory(MB)"
	default:
		return "Revenue"
	}
}

// value extracts the metric from a point for one strategy.
func (s *Series) value(p Point, strat string, m Metric) float64 {
	res, ok := p.Results[strat]
	if !ok {
		return 0
	}
	switch m {
	case MetricTime:
		return res.StrategyTime.Seconds()
	case MetricMemory:
		return res.PeakHeapMB
	default:
		return res.Revenue
	}
}

// WriteTable renders one metric of the series as an aligned ASCII table in
// the orientation the paper plots: one row per strategy, one column per
// parameter value.
func (s *Series) WriteTable(w io.Writer, m Metric) {
	fmt.Fprintf(w, "%s — %s\n", s.Title, m.name())
	cols := make([]string, 0, len(s.Points)+1)
	cols = append(cols, s.Param)
	for _, p := range s.Points {
		cols = append(cols, p.Label)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for _, strat := range StrategyOrder {
		row := make([]string, 0, len(cols))
		row = append(row, strat)
		for _, p := range s.Points {
			row = append(row, fmt.Sprintf("%.4g", s.value(p, strat, m)))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// WriteAll renders all three metric tables of the series.
func (s *Series) WriteAll(w io.Writer) {
	for _, m := range []Metric{MetricRevenue, MetricTime, MetricMemory} {
		s.WriteTable(w, m)
		fmt.Fprintln(w)
	}
}

// WriteCSV emits the series in long form:
// experiment,param,tick,strategy,revenue,time_secs,memory_mb,offered,accepted,served.
func (s *Series) WriteCSV(w io.Writer, header bool) {
	if header {
		fmt.Fprintln(w, "experiment,param,tick,strategy,revenue,time_secs,memory_mb,offered,accepted,served")
	}
	for _, p := range s.Points {
		for _, strat := range StrategyOrder {
			res, ok := p.Results[strat]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%s,%s,%s,%s,%.6g,%.6g,%.6g,%d,%d,%d\n",
				s.ID, s.Param, p.Label, strat,
				res.Revenue, res.StrategyTime.Seconds(), res.PeakHeapMB,
				res.Offered, res.Accepted, res.Served)
		}
	}
}
