package exp

import (
	"fmt"
	"io"
	"math/rand"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/pworld"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/stats"
	"spatialcrowd/internal/workload"
)

// AblationResult is one named variant's score in an ablation comparison.
type AblationResult struct {
	Variant string
	Revenue float64
	Note    string
}

// seedFromModel installs near-exact acceptance statistics from the hidden
// model into a MAPS strategy — the "oracle demand" variant that separates
// MAPS's supply optimization from its UCB learning.
func seedFromModel(m *core.MAPS, model market.ValuationModel, numCells int) {
	const weight = 200000
	for cell := 0; cell < numCells; cell++ {
		cs := m.CellStats(cell)
		d := model.Dist(cell)
		for _, p := range cs.Ladder() {
			acc := int(float64(weight) * stats.Accept(d, p))
			cs.Seed(p, weight, acc)
		}
	}
}

// AblationOracleDemand (A1) compares full MAPS (online UCB learning) with
// MAPS seeded by the true acceptance ratios. The gap measures how much
// revenue the learning component gives up against a demand oracle.
func (r *Runner) AblationOracleDemand() ([]AblationResult, error) {
	cfg := workload.SyntheticConfig{
		Workers:  r.scaled(5000),
		Requests: r.scaled(20000),
		Seed:     r.Seed,
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	strategies, pb, err := r.buildStrategies(model, in.Grid.NumCells())
	if err != nil {
		return nil, err
	}
	learned := strategies[0] // MAPS

	oracleMAPS, err := core.NewMAPS(r.Sim.Params, pb)
	if err != nil {
		return nil, err
	}
	seedFromModel(oracleMAPS, model, in.Grid.NumCells())

	out := make([]AblationResult, 0, 2)
	for _, v := range []struct {
		name string
		s    core.Strategy
		note string
	}{
		{"MAPS (learned demand)", learned, "UCB online estimation"},
		{"MAPS (oracle demand)", oracleMAPS, "true S(p) pre-seeded"},
	} {
		res, err := sim.Run(in, v.s, r.Sim)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Variant: v.name, Revenue: res.Revenue, Note: v.note})
	}
	return out, nil
}

// AblationNoMatching (A2) compares full MAPS against a variant whose supply
// allocation ignores the bipartite matching validation, i.e. treats supply
// as independent per grid — the modelling error the paper attributes to
// per-grid baselines.
func (r *Runner) AblationNoMatching() ([]AblationResult, error) {
	cfg := workload.SyntheticConfig{
		Workers:  r.scaled(2500), // scarce supply: dependence matters most
		Requests: r.scaled(20000),
		Seed:     r.Seed,
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	_, pb, err := r.buildStrategies(model, in.Grid.NumCells())
	if err != nil {
		return nil, err
	}

	out := make([]AblationResult, 0, 2)
	for _, variant := range []bool{false, true} {
		m, err := core.NewMAPS(r.Sim.Params, pb)
		if err != nil {
			return nil, err
		}
		m.NoMatchingValidation = variant
		seedFromModel(m, model, in.Grid.NumCells())
		res, err := sim.Run(in, m, r.Sim)
		if err != nil {
			return nil, err
		}
		name, note := "MAPS (with matching)", "augmenting-path validated supply"
		if variant {
			name, note = "MAPS (no matching)", "per-grid independent supply"
		}
		out = append(out, AblationResult{Variant: name, Revenue: res.Revenue, Note: note})
	}
	return out, nil
}

// GapResult reports the A3 optimality study on one tiny instance.
type GapResult struct {
	Instance  int
	MAPSValue float64 // exact E[U] of the prices MAPS chose
	OptValue  float64 // exact E[U] of the best per-grid ladder prices
	Ratio     float64
}

// AblationOptimalityGap (A3) measures MAPS against the exhaustive optimum on
// tiny single-period instances where the expected revenue can be computed
// exactly by possible-world enumeration. Theorem 8 promises (1 - 1/e) on the
// approximation L; empirically the ratio on E[U] is usually far better.
func (r *Runner) AblationOptimalityGap(instances int) ([]GapResult, error) {
	if instances <= 0 {
		instances = 10
	}
	rng := rand.New(rand.NewSource(r.Seed + 7))
	params := r.Sim.Params
	grid := geo.SquareGrid(20, 2) // 4 cells
	ladder, err := stats.PriceLadder(params.PMin, params.PMax, params.Alpha)
	if err != nil {
		return nil, err
	}
	const mapsBase = 2.0
	// MAPS may retire a grid at its base price, which is not a ladder rung;
	// the exhaustive optimum must range over the same candidate set.
	candidates := append(append([]float64(nil), ladder...), mapsBase)

	var out []GapResult
	for inst := 0; inst < instances; inst++ {
		// 4-8 tasks, 2-4 workers, known per-cell demand.
		nt := 4 + rng.Intn(5)
		nw := 2 + rng.Intn(3)
		model := market.PerCellModel{Default: stats.TruncNormal{Mu: 1.5 + 2*rng.Float64(), Sigma: 1, Lo: 1, Hi: 5}}
		model.Cells = map[int]stats.Dist{}
		for c := 0; c < grid.NumCells(); c++ {
			model.Cells[c] = stats.TruncNormal{Mu: 1.2 + 2.5*rng.Float64(), Sigma: 1, Lo: 1, Hi: 5}
		}
		tasks := make([]market.Task, nt)
		for i := range tasks {
			tasks[i] = market.Task{
				ID:       i,
				Origin:   geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
				Distance: 0.5 + rng.Float64()*4,
			}
		}
		workers := make([]market.Worker, nw)
		for i := range workers {
			workers[i] = market.Worker{
				ID:     i,
				Loc:    geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
				Radius: 4 + rng.Float64()*8,
			}
		}
		graph := market.BuildBipartite(tasks, workers)
		ctx := core.BuildContext(grid, 0, tasks, workers, graph)

		m, err := core.NewMAPS(params, mapsBase)
		if err != nil {
			return nil, err
		}
		seedFromModel(m, model, grid.NumCells())
		prices := m.Prices(ctx)

		evalPrices := func(ps []float64) (float64, error) {
			probs := make([]float64, nt)
			weights := make([]float64, nt)
			for i := range tasks {
				cell := grid.CellOf(tasks[i].Origin)
				probs[i] = stats.Accept(model.Dist(cell), ps[i])
				weights[i] = tasks[i].Distance * ps[i]
			}
			return pworld.ExpectedRevenueExact(&pworld.World{
				Graph: graph, AcceptProb: probs, Weight: weights,
			})
		}
		mapsVal, err := evalPrices(prices)
		if err != nil {
			return nil, err
		}

		// Exhaustive optimum over per-cell ladder assignments.
		cells := make([]int, 0, 4)
		seen := map[int]bool{}
		for i := range tasks {
			c := grid.CellOf(tasks[i].Origin)
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		best := 0.0
		assign := make(map[int]float64, len(cells))
		var recurse func(k int) error
		recurse = func(k int) error {
			if k == len(cells) {
				ps := make([]float64, nt)
				for i := range tasks {
					ps[i] = assign[grid.CellOf(tasks[i].Origin)]
				}
				v, err := evalPrices(ps)
				if err != nil {
					return err
				}
				if v > best {
					best = v
				}
				return nil
			}
			for _, p := range candidates {
				assign[cells[k]] = p
				if err := recurse(k + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := recurse(0); err != nil {
			return nil, err
		}

		ratio := 1.0
		if best > 0 {
			ratio = mapsVal / best
		}
		out = append(out, GapResult{Instance: inst, MAPSValue: mapsVal, OptValue: best, Ratio: ratio})
	}
	return out, nil
}

// LadderPoint reports the A4 base-price ladder sensitivity at one alpha.
type LadderPoint struct {
	Alpha float64
	// Achieved is p_m*S(p_m) / p* S(p*), the empirical counterpart of
	// Theorem 3's (1 - alpha) guarantee.
	Achieved float64
	Bound    float64
}

// AblationLadderAlpha (A4) sweeps the ladder step alpha and reports the
// achieved fraction of the continuous-optimum revenue against Theorem 3's
// (1 - alpha) bound.
func (r *Runner) AblationLadderAlpha() ([]LadderPoint, error) {
	alphas := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	d := stats.TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5}
	var out []LadderPoint
	for _, a := range alphas {
		params := r.Sim.Params
		params.Alpha = a
		b, err := core.NewBaseP(params)
		if err != nil {
			return nil, err
		}
		oracle := &modelOracle{model: market.UniformModel{D: d}, rng: rand.New(rand.NewSource(r.Seed))}
		if err := b.Calibrate(oracle, 1, 0); err != nil {
			return nil, err
		}
		pm := b.Reserves()[0]
		pstar := stats.MyersonReserve(d, params.PMin, params.PMax)
		out = append(out, LadderPoint{
			Alpha:    a,
			Achieved: stats.RevenueAt(d, pm) / stats.RevenueAt(d, pstar),
			Bound:    1 - a,
		})
	}
	return out, nil
}

// WriteAblation renders ablation results as a small table.
func WriteAblation(w io.Writer, title string, rows []AblationResult) {
	fmt.Fprintln(w, title)
	for _, row := range rows {
		fmt.Fprintf(w, "  %-26s revenue=%.4g  (%s)\n", row.Variant, row.Revenue, row.Note)
	}
}

// gapProbe wraps MAPS and records the largest neighboring-grid price gap
// seen over the whole run.
type gapProbe struct {
	*core.MAPS
	maxGap float64
}

// Prices implements core.Strategy.
func (g *gapProbe) Prices(ctx *core.PeriodContext) []float64 {
	out := g.MAPS.Prices(ctx)
	if gap := core.PriceGap(ctx.Space, g.MAPS.LastPrices); gap > g.maxGap {
		g.maxGap = gap
	}
	return out
}

// AblationSmoothing (A5) measures the revenue cost of spatial price
// smoothing (Section 4.2.3's practical note): platforms trade a little
// revenue for spatially stable prices. It also reports the worst
// neighboring-grid price gap each weight leaves over the run.
func (r *Runner) AblationSmoothing() ([]AblationResult, error) {
	cfg := workload.SyntheticConfig{
		Workers:  r.scaled(5000),
		Requests: r.scaled(20000),
		Seed:     r.Seed,
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	_, pb, err := r.buildStrategies(model, in.Grid.NumCells())
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, w := range []float64{0, 0.25, 0.5} {
		m, err := core.NewMAPS(r.Sim.Params, pb)
		if err != nil {
			return nil, err
		}
		m.Smoothing = w
		seedFromModel(m, model, in.Grid.NumCells())
		probe := &gapProbe{MAPS: m}
		res, err := sim.Run(in, probe, r.Sim)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant: fmt.Sprintf("MAPS smoothing w=%.2f", w),
			Revenue: res.Revenue,
			Note:    fmt.Sprintf("max neighbor price gap %.2f", probe.maxGap),
		})
	}
	return out, nil
}

// AblationParametricDemand (A6) compares the paper's nonparametric UCB
// demand estimation against a parametric logistic fit (ParametricMAPS).
// The logistic fit shares strength across prices but is biased whenever the
// true acceptance curve is not logistic.
func (r *Runner) AblationParametricDemand() ([]AblationResult, error) {
	cfg := workload.SyntheticConfig{
		Workers:  r.scaled(5000),
		Requests: r.scaled(20000),
		Seed:     r.Seed,
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	strategies, pb, err := r.buildStrategies(model, in.Grid.NumCells())
	if err != nil {
		return nil, err
	}
	ucb := strategies[0] // warm-started MAPS

	logit, err := core.NewParametricMAPS(r.Sim.Params, pb)
	if err != nil {
		return nil, err
	}

	var out []AblationResult
	for _, v := range []struct {
		s    core.Strategy
		note string
	}{
		{ucb, "nonparametric per-rung UCB (the paper's choice)"},
		{logit, "online logistic regression fit"},
	} {
		res, err := sim.Run(in, v.s, r.Sim)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Variant: v.s.Name(), Revenue: res.Revenue, Note: v.note})
	}
	return out, nil
}

// AblationRepositioning (A7) measures the supply response the paper's
// practical note (i) anticipates: when idle workers drift toward
// higher-priced neighboring grids, MAPS's surge prices actively rebalance
// the market. Durations above one period are required for drift to matter.
func (r *Runner) AblationRepositioning() ([]AblationResult, error) {
	cfg := workload.SyntheticConfig{
		Workers:        r.scaled(2500), // scarce supply: rebalancing matters
		Requests:       r.scaled(20000),
		WorkerDuration: 5, // idle workers survive long enough to move
		Seed:           r.Seed,
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	_, pb, err := r.buildStrategies(model, in.Grid.NumCells())
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, speed := range []float64{0, 2, 5} {
		m, err := core.NewMAPS(r.Sim.Params, pb)
		if err != nil {
			return nil, err
		}
		seedFromModel(m, model, in.Grid.NumCells())
		simCfg := r.Sim
		simCfg.RepositionSpeed = speed
		res, err := sim.Run(in, m, simCfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant: fmt.Sprintf("MAPS reposition speed=%g", speed),
			Revenue: res.Revenue,
			Note:    fmt.Sprintf("served %d of %d accepted", res.Served, res.Accepted),
		})
	}
	return out, nil
}
