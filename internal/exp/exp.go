// Package exp reproduces the paper's evaluation: one driver per figure panel
// group (Figures 6–8 and 10) plus the ablations DESIGN.md calls out. Each
// driver sweeps a parameter, runs the five pricing strategies on identical
// workloads, and returns a Series whose revenue / running-time / memory rows
// mirror the paper's plots.
package exp

import (
	"fmt"
	"math/rand"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/workload"
)

// StrategyOrder is the column order of every table, matching the paper's
// legends.
var StrategyOrder = []string{"MAPS", "BaseP", "SDR", "SDE", "CappedUCB"}

// Runner configures how the experiments execute.
type Runner struct {
	// Seed drives workload generation and calibration sampling.
	Seed int64
	// Scale divides all population sizes (1 = the paper's scale). The
	// benchmark harness uses larger scales to keep iterations short; the
	// command-line harness defaults to 1.
	Scale int
	// ProbeBudget caps base pricing's per-price calibration probes
	// (0 = the full Hoeffding h(p), faithful but slow on fine grids).
	ProbeBudget int
	// Sim is passed to every simulation run.
	Sim sim.Config
}

// NewRunner returns the default experiment configuration: paper scale, the
// full Hoeffding calibration budget (Algorithm 1's h(p)), and the default
// simulator settings. The calibration quality matters: it both fixes the
// base price and warm-starts the UCB learners, and under-sampling it erodes
// MAPS's margin over the unified base price.
func NewRunner() *Runner {
	return &Runner{Seed: 42, Scale: 1, ProbeBudget: 0, Sim: sim.DefaultConfig()}
}

// scaled divides a population by the runner's scale, keeping at least 1.
func (r *Runner) scaled(n int) int {
	s := r.Scale
	if s <= 1 {
		return n
	}
	if n/s < 1 {
		return 1
	}
	return n / s
}

// Point is one x-axis tick of a series: the label and each strategy's result.
type Point struct {
	Label   string
	Results map[string]sim.Result
}

// Series is one column of a paper figure: a parameter sweep with all
// strategies' revenue, time, and memory.
type Series struct {
	ID     string // experiment id from DESIGN.md, e.g. "E1"
	Title  string // e.g. "Fig 6(a,e,i): varying |W|"
	Param  string // x-axis name
	Points []Point
}

// modelOracle adapts the hidden valuation model into base pricing's
// calibration oracle ("requesters who recently have issued tasks").
type modelOracle struct {
	model market.ValuationModel
	rng   *rand.Rand
}

// Probe implements core.ProbeOracle.
func (o *modelOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

// buildStrategies calibrates base pricing against the model and instantiates
// the five strategies around the resulting base price.
func (r *Runner) buildStrategies(model market.ValuationModel, numCells int) ([]core.Strategy, float64, error) {
	params := r.Sim.Params
	basep, err := core.NewBaseP(params)
	if err != nil {
		return nil, 0, err
	}
	oracle := &modelOracle{model: model, rng: rand.New(rand.NewSource(r.Seed + 1))}
	if err := basep.Calibrate(oracle, numCells, r.ProbeBudget); err != nil {
		return nil, 0, err
	}
	pb := basep.BasePrice()

	maps, err := core.NewMAPS(params, pb)
	if err != nil {
		return nil, 0, err
	}
	sdr, err := core.NewSDR(params, pb)
	if err != nil {
		return nil, 0, err
	}
	sde, err := core.NewSDE(params, pb)
	if err != nil {
		return nil, 0, err
	}
	cucb, err := core.NewCappedUCB(params, pb)
	if err != nil {
		return nil, 0, err
	}
	// The platform keeps the observations base pricing paid for: both UCB
	// learners continue from the calibration statistics rather than cold.
	basep.WarmStart(maps.CellStats)
	basep.WarmStart(cucb.CellStats)
	return []core.Strategy{maps, basep, sdr, sde, cucb}, pb, nil
}

// runInstance executes all strategies on one instance and returns results
// keyed by strategy name.
func (r *Runner) runInstance(in *market.Instance, model market.ValuationModel) (map[string]sim.Result, error) {
	strategies, _, err := r.buildStrategies(model, in.Grid.NumCells())
	if err != nil {
		return nil, err
	}
	out := make(map[string]sim.Result, len(strategies))
	for _, s := range strategies {
		res, err := sim.Run(in, s, r.Sim)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", s.Name(), err)
		}
		out[s.Name()] = res
	}
	return out, nil
}

// sweepSynthetic runs one synthetic sweep: for each tick, mutate the default
// config, generate, and run all strategies.
func (r *Runner) sweepSynthetic(id, title, param string, ticks []string,
	mutate func(i int, cfg *workload.SyntheticConfig)) (*Series, error) {

	s := &Series{ID: id, Title: title, Param: param}
	for i, tick := range ticks {
		cfg := workload.SyntheticConfig{
			Workers:  r.scaled(5000),
			Requests: r.scaled(20000),
			Seed:     r.Seed,
		}
		mutate(i, &cfg)
		in, model, err := workload.Synthetic(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp %s tick %s: %w", id, tick, err)
		}
		results, err := r.runInstance(in, model)
		if err != nil {
			return nil, fmt.Errorf("exp %s tick %s: %w", id, tick, err)
		}
		s.Points = append(s.Points, Point{Label: tick, Results: results})
	}
	return s, nil
}
